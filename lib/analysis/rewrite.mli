(** The certified rewrite pass: a fixpoint of semantics-preserving rules
    run before plan compilation, so that syntactically different spellings
    of one query meet the plan cache — and the dispatch cost model — in one
    canonical normal form.

    Every rule fires only when its side condition is discharged by one of
    the static oracles already in the tree: constant atoms fold through
    {!Cqa_poly.Mpoly.constant_value}, linear atoms are replaced by their
    interned {!Cqa_linear.Linconstr} normal forms, dead branches and
    unsatisfiable conjunctions are refuted by the {!Range} interval pass,
    and summations collapse only when their range is provably empty.  Under
    [~verify:true] (the [make lint] and fuzz mode) every applied rewrite is
    additionally re-checked by {!Equiv} on the spot; a [Distinct] verdict
    is collected as a refutation — the rewriter is then unsound and the
    build gate fails.

    The rules, by diagnostic code:
    - [rw-const-fold]: constant atoms and constant subterms folded
      ([2 < 3] to [true], [t + 0] to [t], [0 * t] to [0]);
    - [rw-atom-canon]: a linear atom becomes its interned normal form
      [e OP 0] with primitive integer coefficients;
    - [rw-neg-atom]: [not (e < 0)] becomes the complementary atom
      ([Cqa_linear.Linconstr.negate]); equalities are left alone (their
      complement is a disjunction, which would grow the formula);
    - [rw-not]: double negation, [not true], [not false];
    - [rw-and-unit] / [rw-or-unit]: unit and absorbing constants of the
      lattice connectives;
    - [rw-idempotent]: duplicate operands of a flattened [/\]/[\/] chain;
    - [rw-absorption]: [f /\ (f \/ g)] to [f]; [f \/ (f /\ g)] to [f];
    - [rw-comm-sort]: operands of a quantifier- and summation-free chain
      put in a canonical order (side condition: pointwise-total operands,
      so reordering cannot change evaluation behaviour);
    - [rw-unsat-conj]: a conjunction some variable of which {!Range} pins
      to an empty interval becomes [false];
    - [rw-dead-branch]: a disjunct refuted by {!Range.truth} or interval
      analysis is dropped;
    - [rw-quant-unused]: a binder with no free occurrence is dropped;
    - [rw-quant-shrink]: a quantifier is pushed past the chain operands
      that do not mention its variable (sound for both quantifiers over
      both connectives on the nonempty domain R);
    - [rw-empty-sum]: a summation whose guard or END body is refuted by
      {!Range} becomes [0];
    - [rw-guard-hoist]: summation-tuple-independent guard conjuncts are
      hoisted ahead of the dependent ones (the evaluator then rejects a
      dead binding before materializing endpoint tuples); the pushdown
      direction — moving guard conjuncts into the END body — is unsound
      (END's endpoint set is not restriction-invariant) and deliberately
      absent. *)

open Cqa_arith
open Cqa_logic
open Cqa_core

type step = {
  rule : string;  (** diagnostic code, one of {!rule_codes} *)
  path : string list;  (** AST path, {!Diagnostic.t} style *)
  before : string;  (** rendered subformula or subterm *)
  after : string;
}

type refutation = {
  refuted_rule : string;
  refuted_path : string list;
  witness : Q.t Var.Map.t;  (** point separating the two sides *)
}

type result = {
  rewritten : Ast.formula;
  steps : step list;  (** in application order; [] unless [~trace:true] *)
  refuted : refutation list;  (** [] unless [~verify:true] *)
  passes : int;  (** bottom-up sweeps until the fixpoint *)
  fired : int;  (** total rule applications *)
  atoms_before : int;
  atoms_after : int;
}

val rule_codes : string list
(** Every code a {!step} can carry, sorted — pinned by the golden test. *)

val rewrite : ?db:Db.t -> ?verify:bool -> ?trace:bool -> Ast.formula -> result
(** Run the rules bottom-up to a fixpoint (capped at a small pass bound;
    the rules are reductive or idempotent, so the cap is a safety valve).
    [db] feeds the {!Range} oracles (relation bounding boxes) and
    {!Equiv}; [trace] (default false) records {!step}s; [verify] (default
    false) re-checks every applied rewrite with {!Equiv}.  Telemetry:
    [plan.rewrite.fired], [plan.rewrite.atoms_eliminated],
    [plan.rewrite.passes] (exempt from the determinism contract like all
    [plan.*] counters). *)

val formula : ?db:Db.t -> Ast.formula -> Ast.formula
(** [(rewrite f).rewritten] without trace or verification: the normal form
    {!Planner.compile} keys the plan cache on.  Memoized on the formula
    and the database's physical identity, so a warm plan-cache lookup
    pays a hash and a structural compare rather than a rule fixpoint. *)

val clear_memo : unit -> unit
(** Drop the {!formula} memo (cold-cache benchmarks, tests). *)

val diagnostics : result -> Diagnostic.t list
(** One [Info] diagnostic per step (code, path, before/after message) plus
    one [Error] per refutation (code [rw-unsound]) — the payload of
    [cqa analyze --explain-rewrites]. *)
