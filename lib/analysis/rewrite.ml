open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly
open Cqa_core
module T = Cqa_telemetry.Telemetry

(* plan.* namespace: rewrite traffic depends on what reaches the planner,
   like the cache counters, and is exempt from the determinism contract. *)
let tm_fired = T.counter "plan.rewrite.fired"
let tm_atoms_elim = T.counter "plan.rewrite.atoms_eliminated"
let tm_passes = T.counter "plan.rewrite.passes"

type step = {
  rule : string;
  path : string list;
  before : string;
  after : string;
}

type refutation = {
  refuted_rule : string;
  refuted_path : string list;
  witness : Q.t Var.Map.t;
}

type result = {
  rewritten : Ast.formula;
  steps : step list;
  refuted : refutation list;
  passes : int;
  fired : int;
  atoms_before : int;
  atoms_after : int;
}

let rule_codes =
  [
    "rw-absorption"; "rw-and-unit"; "rw-atom-canon"; "rw-comm-sort";
    "rw-const-fold"; "rw-dead-branch"; "rw-empty-sum"; "rw-guard-hoist";
    "rw-idempotent"; "rw-neg-atom"; "rw-not"; "rw-or-unit"; "rw-quant-shrink";
    "rw-quant-unused"; "rw-unsat-conj";
  ]

(* ------------------------------------------------------------------ *)
(* Structural total order (for the canonical operand sort)             *)
(* ------------------------------------------------------------------ *)

let term_tag = function
  | Ast.Const _ -> 0
  | Ast.TVar _ -> 1
  | Ast.Add _ -> 2
  | Ast.Mul _ -> 3
  | Ast.Sum _ -> 4

let formula_tag = function
  | Ast.True -> 0
  | Ast.False -> 1
  | Ast.Cmp _ -> 2
  | Ast.Rel _ -> 3
  | Ast.Not _ -> 4
  | Ast.And _ -> 5
  | Ast.Or _ -> 6
  | Ast.Exists _ -> 7
  | Ast.Forall _ -> 8

let cmp_tag = function Ast.Ceq -> 0 | Ast.Clt -> 1 | Ast.Cle -> 2

let rec compare_list cmp a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys -> ( match cmp x y with 0 -> compare_list cmp xs ys | c -> c)

let rec compare_term (a : Ast.term) (b : Ast.term) =
  match (a, b) with
  | Ast.Const p, Ast.Const q -> Q.compare p q
  | Ast.TVar x, Ast.TVar y -> Var.compare x y
  | Ast.Add (a1, a2), Ast.Add (b1, b2) | Ast.Mul (a1, a2), Ast.Mul (b1, b2) -> (
      match compare_term a1 b1 with 0 -> compare_term a2 b2 | c -> c)
  | Ast.Sum s, Ast.Sum t ->
      let cs =
        [
          (fun () -> Var.compare s.Ast.gamma_var t.Ast.gamma_var);
          (fun () -> compare_list Var.compare s.Ast.w t.Ast.w);
          (fun () -> Var.compare s.Ast.end_y t.Ast.end_y);
          (fun () -> compare_formula s.Ast.gamma t.Ast.gamma);
          (fun () -> compare_formula s.Ast.guard t.Ast.guard);
          (fun () -> compare_formula s.Ast.end_body t.Ast.end_body);
        ]
      in
      List.fold_left (fun acc c -> if acc <> 0 then acc else c ()) 0 cs
  | _ -> compare (term_tag a) (term_tag b)

and compare_formula (f : Ast.formula) (g : Ast.formula) =
  match (f, g) with
  | Ast.True, Ast.True | Ast.False, Ast.False -> 0
  | Ast.Cmp (o1, a1, b1), Ast.Cmp (o2, a2, b2) -> (
      match compare (cmp_tag o1) (cmp_tag o2) with
      | 0 -> (
          match compare_term a1 a2 with 0 -> compare_term b1 b2 | c -> c)
      | c -> c)
  | Ast.Rel (r1, v1), Ast.Rel (r2, v2) -> (
      match String.compare r1 r2 with
      | 0 -> compare_list Var.compare v1 v2
      | c -> c)
  | Ast.Not a, Ast.Not b -> compare_formula a b
  | Ast.And (a1, a2), Ast.And (b1, b2) | Ast.Or (a1, a2), Ast.Or (b1, b2) -> (
      match compare_formula a1 b1 with 0 -> compare_formula a2 b2 | c -> c)
  | Ast.Exists (x, a), Ast.Exists (y, b) | Ast.Forall (x, a), Ast.Forall (y, b)
    -> (
      match Var.compare x y with 0 -> compare_formula a b | c -> c)
  | _ -> compare (formula_tag f) (formula_tag g)

(* ------------------------------------------------------------------ *)
(* Side-condition predicates                                           *)
(* ------------------------------------------------------------------ *)

(* Pointwise-total operands: no summation term and no quantifier anywhere,
   so [Eval.holds] cannot raise on them and reordering a chain cannot
   change evaluation behaviour (only [&&]/[||] shortcuts move). *)
let rec pointwise_total (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Rel _ -> true
  | Ast.Cmp (_, a, b) -> sum_free a && sum_free b
  | Ast.Not g -> pointwise_total g
  | Ast.And (g, h) | Ast.Or (g, h) -> pointwise_total g && pointwise_total h
  | Ast.Exists _ | Ast.Forall _ -> false

and sum_free (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> true
  | Ast.Add (a, b) | Ast.Mul (a, b) -> sum_free a && sum_free b
  | Ast.Sum _ -> false

(* ------------------------------------------------------------------ *)
(* The rewrite context: trace, verification, counters                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  db : Db.t option;
  verify : bool;
  trace : bool;
  mutable steps : step list;  (* reversed *)
  mutable refuted : refutation list;  (* reversed *)
  mutable fired : int;
}

let render_f f = Format.asprintf "%a" Ast.pp f
let render_t t = Format.asprintf "%a" Ast.pp_term t

(* [before]/[after] are thunks: rendering a step costs two formatter runs,
   so it must not happen on the untraced hot path (every plan-cache
   lookup). *)
let record ctx rule path before after =
  ctx.fired <- ctx.fired + 1;
  if ctx.trace then
    ctx.steps <- { rule; path; before = before (); after = after () } :: ctx.steps

(* Every applied rewrite is re-checked on the spot in verify mode: formula
   rewrites as set equivalence over their free variables, term rewrites as
   validity of [before = after].  [Unknown] verdicts (out-of-fragment
   subtrees) are tolerated — only a [Distinct] witness is a refutation. *)
let check_f ctx rule path before after =
  if ctx.verify then
    match Equiv.check ?db:ctx.db before after with
    | Equiv.Distinct witness ->
        ctx.refuted <-
          { refuted_rule = rule; refuted_path = path; witness } :: ctx.refuted
    | Equiv.Equal | Equiv.Unknown _ -> ()

let check_t ctx rule path before after =
  if ctx.verify then
    check_f ctx rule path (Ast.Cmp (Ast.Ceq, before, after)) Ast.True

let fire_f ctx rule path before after =
  record ctx rule path
    (fun () -> render_f before)
    (fun () -> render_f after);
  check_f ctx rule path before after;
  after

let fire_t ctx rule path before after =
  record ctx rule path
    (fun () -> render_t before)
    (fun () -> render_t after);
  check_t ctx rule path before after;
  after

(* ------------------------------------------------------------------ *)
(* Chain helpers                                                       *)
(* ------------------------------------------------------------------ *)

let rec flatten_and (f : Ast.formula) acc =
  match f with
  | Ast.And (g, h) -> flatten_and g (flatten_and h acc)
  | _ -> f :: acc

let rec flatten_or (f : Ast.formula) acc =
  match f with
  | Ast.Or (g, h) -> flatten_or g (flatten_or h acc)
  | _ -> f :: acc

let build_and = function
  | [] -> Ast.True
  | f :: fs -> List.fold_left (fun acc g -> Ast.And (acc, g)) f fs

let build_or = function
  | [] -> Ast.False
  | f :: fs -> List.fold_left (fun acc g -> Ast.Or (acc, g)) f fs

let dedup_stable fs =
  let rec go seen = function
    | [] -> []
    | f :: rest ->
        if List.exists (Plan.equal_formula f) seen then go seen rest
        else f :: go (f :: seen) rest
  in
  go [] fs

(* Interval refutation of a conjunction: some variable is pinned to the
   empty interval.  Sound whatever the unknown flag says — [bounds_of] is
   an over-approximation, so an empty enclosure means an empty set. *)
let interval_unsat ?db f =
  Var.Set.exists
    (fun v -> match Range.bounds_of ?db v f with Range.Empty, _ -> true | _ -> false)
    (Ast.free_vars f)

(* ------------------------------------------------------------------ *)
(* Atom canonicalization                                               *)
(* ------------------------------------------------------------------ *)

let linconstr_of_cmp op a b =
  if sum_free a && sum_free b then
    match Ast.to_mpoly Ast.(a -! b) with
    | None -> None
    | Some p -> (
        match Mpoly.to_linexpr p with
        | None -> None
        | Some e ->
            let op' =
              match op with
              | Ast.Ceq -> Linconstr.Eq
              | Ast.Clt -> Linconstr.Lt
              | Ast.Cle -> Linconstr.Le
            in
            Some (Linconstr.make e op'))
  else None

(* The canonical atom must be a fixpoint of the term-level constant folds:
   [of_linformula] renders unit coefficients and first powers as
   [Mul (_, Const 1)], which the folds would otherwise undo — and the
   canonicalizer redo — on every pass. *)
let rec fold_term (t : Ast.term) : Ast.term =
  match t with
  | Ast.Const _ | Ast.TVar _ | Ast.Sum _ -> t
  | Ast.Add (a, b) -> (
      match (fold_term a, fold_term b) with
      | Ast.Const p, Ast.Const q -> Ast.Const (Q.add p q)
      | Ast.Const z, u when Q.is_zero z -> u
      | u, Ast.Const z when Q.is_zero z -> u
      | a', b' -> Ast.Add (a', b'))
  | Ast.Mul (a, b) -> (
      match (fold_term a, fold_term b) with
      | Ast.Const p, Ast.Const q -> Ast.Const (Q.mul p q)
      | (Ast.Const z, _ | _, Ast.Const z) when Q.is_zero z -> Ast.Const Q.zero
      | Ast.Const o, u when Q.equal o Q.one -> u
      | u, Ast.Const o when Q.equal o Q.one -> u
      | a', b' -> Ast.Mul (a', b'))

let atom_of_linconstr c =
  match Ast.of_linformula (Cqa_logic.Formula.Atom c) with
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, fold_term a, fold_term b)
  | f -> f

let canon_atom ctx path (f : Ast.formula) =
  match f with
  | Ast.Cmp (op, a, b) -> (
      match linconstr_of_cmp op a b with
      | None -> f
      | Some c -> (
          match Linconstr.is_trivial c with
          | Some bv ->
              fire_f ctx "rw-const-fold" path f (if bv then Ast.True else Ast.False)
          | None ->
              let canon = atom_of_linconstr c in
              if Plan.equal_formula canon f then f
              else fire_f ctx "rw-atom-canon" path f canon))
  | _ -> f

(* ------------------------------------------------------------------ *)
(* One bottom-up pass                                                  *)
(* ------------------------------------------------------------------ *)

let rec rw_f ctx path (f : Ast.formula) : Ast.formula =
  match f with
  | Ast.True | Ast.False | Ast.Rel _ -> f
  | Ast.Cmp (op, a, b) ->
      let a' = rw_t ctx (path @ [ "cmp.l" ]) a
      and b' = rw_t ctx (path @ [ "cmp.r" ]) b in
      canon_atom ctx path (Ast.Cmp (op, a', b'))
  | Ast.Not g -> (
      let g' = rw_f ctx (path @ [ "not" ]) g in
      match g' with
      | Ast.True -> fire_f ctx "rw-not" path (Ast.Not g') Ast.False
      | Ast.False -> fire_f ctx "rw-not" path (Ast.Not g') Ast.True
      | Ast.Not h -> fire_f ctx "rw-not" path (Ast.Not g') h
      | Ast.Cmp (op, a, b) -> (
          (* complement of a linear inequality is one atom; equalities
             would become a disjunction and are left alone *)
          match linconstr_of_cmp op a b with
          | Some c when Linconstr.op c <> Linconstr.Eq -> (
              match Linconstr.negate c with
              | [ c' ] ->
                  fire_f ctx "rw-neg-atom" path (Ast.Not g')
                    (atom_of_linconstr c')
              | _ -> Ast.Not g')
          | _ -> Ast.Not g')
      | _ -> Ast.Not g')
  | Ast.And _ ->
      let fs = flatten_and f [] in
      let fs =
        List.mapi
          (fun i g -> rw_f ctx (path @ [ Printf.sprintf "and.%d" i ]) g)
          fs
      in
      (* re-flatten: operand rewrites may have exposed nested chains *)
      let fs = List.concat_map (fun g -> flatten_and g []) fs in
      simplify_and ctx path (build_and fs) fs
  | Ast.Or _ ->
      let fs = flatten_or f [] in
      let fs =
        List.mapi
          (fun i g -> rw_f ctx (path @ [ Printf.sprintf "or.%d" i ]) g)
          fs
      in
      let fs = List.concat_map (fun g -> flatten_or g []) fs in
      simplify_or ctx path (build_or fs) fs
  | Ast.Exists (x, g) ->
      let g' =
        rw_f ctx (path @ [ Printf.sprintf "exists:%s" (Var.name x) ]) g
      in
      quant ctx path ~forall:false x g'
  | Ast.Forall (x, g) ->
      let g' =
        rw_f ctx (path @ [ Printf.sprintf "forall:%s" (Var.name x) ]) g
      in
      quant ctx path ~forall:true x g'

and simplify_and ctx path before fs =
  if List.exists (function Ast.False -> true | _ -> false) fs then
    fire_f ctx "rw-and-unit" path before Ast.False
  else begin
    let fs' = List.filter (function Ast.True -> false | _ -> true) fs in
    let fs' =
      if List.compare_lengths fs' fs <> 0 then begin
        ignore (fire_f ctx "rw-and-unit" path before (build_and fs'));
        fs'
      end
      else fs
    in
    let deduped = dedup_stable fs' in
    let fs' =
      if List.compare_lengths deduped fs' <> 0 then begin
        ignore (fire_f ctx "rw-idempotent" path before (build_and deduped));
        deduped
      end
      else fs'
    in
    (* absorption: a conjunct that is a disjunction containing another
       conjunct verbatim is implied by it *)
    let absorbed =
      List.filter
        (fun d ->
          match d with
          | Ast.Or _ ->
              let ds = flatten_or d [] in
              not
                (List.exists
                   (fun c ->
                     (not (Plan.equal_formula c d))
                     && List.exists (Plan.equal_formula c) ds)
                   fs')
          | _ -> true)
        fs'
    in
    let fs' =
      if List.compare_lengths absorbed fs' <> 0 then begin
        ignore (fire_f ctx "rw-absorption" path before (build_and absorbed));
        absorbed
      end
      else fs'
    in
    match fs' with
    | [] -> build_and fs'
    | [ f ] -> f
    | _ ->
        let conj = build_and fs' in
        if interval_unsat ?db:ctx.db conj then
          fire_f ctx "rw-unsat-conj" path conj Ast.False
        else if List.for_all pointwise_total fs' then begin
          let sorted = List.stable_sort compare_formula fs' in
          if List.for_all2 Plan.equal_formula sorted fs' then conj
          else fire_f ctx "rw-comm-sort" path conj (build_and sorted)
        end
        else conj
  end

and simplify_or ctx path before fs =
  if List.exists (function Ast.True -> true | _ -> false) fs then
    fire_f ctx "rw-or-unit" path before Ast.True
  else begin
    let fs' = List.filter (function Ast.False -> false | _ -> true) fs in
    let fs' =
      if List.compare_lengths fs' fs <> 0 then begin
        ignore (fire_f ctx "rw-or-unit" path before (build_or fs'));
        fs'
      end
      else fs
    in
    (* disjuncts the interval pass refutes are unreachable *)
    let live =
      List.filter
        (fun d ->
          match Range.truth d with
          | Some false -> false
          | _ -> not (interval_unsat ?db:ctx.db d))
        fs'
    in
    let fs' =
      if List.compare_lengths live fs' <> 0 then begin
        ignore (fire_f ctx "rw-dead-branch" path before (build_or live));
        live
      end
      else fs'
    in
    let deduped = dedup_stable fs' in
    let fs' =
      if List.compare_lengths deduped fs' <> 0 then begin
        ignore (fire_f ctx "rw-idempotent" path before (build_or deduped));
        deduped
      end
      else fs'
    in
    (* absorption: a disjunct that is a conjunction containing another
       disjunct verbatim is subsumed by it *)
    let absorbed =
      List.filter
        (fun d ->
          match d with
          | Ast.And _ ->
              let ds = flatten_and d [] in
              not
                (List.exists
                   (fun c ->
                     (not (Plan.equal_formula c d))
                     && List.exists (Plan.equal_formula c) ds)
                   fs')
          | _ -> true)
        fs'
    in
    let fs' =
      if List.compare_lengths absorbed fs' <> 0 then begin
        ignore (fire_f ctx "rw-absorption" path before (build_or absorbed));
        absorbed
      end
      else fs'
    in
    match fs' with
    | [] -> build_or fs'
    | [ f ] -> f
    | _ ->
        let disj = build_or fs' in
        if List.for_all pointwise_total fs' then begin
          let sorted = List.stable_sort compare_formula fs' in
          if List.for_all2 Plan.equal_formula sorted fs' then disj
          else fire_f ctx "rw-comm-sort" path disj (build_or sorted)
        end
        else disj
  end

(* Quantifier scope rules.  Both quantifiers push past chain operands that
   do not mention the bound variable, over both connectives: on the
   nonempty domain R,  Qx.(g op h)  with  x free only in h  is
   g op Qx.h  for every combination of  Q in {exists, forall}  and
   op in {/\, \/}. *)
and quant ctx path ~forall x g =
  let mk x g = if forall then Ast.Forall (x, g) else Ast.Exists (x, g) in
  if not (Var.Set.mem x (Ast.free_vars g)) then
    fire_f ctx "rw-quant-unused" path (mk x g) g
  else
    let split flatten build =
      let fs = flatten g [] in
      let indep, dep =
        List.partition (fun c -> not (Var.Set.mem x (Ast.free_vars c))) fs
      in
      if indep = [] then mk x g
      else
        (* dep <> [] since x is free in g *)
        fire_f ctx "rw-quant-shrink" path (mk x g)
          (build (indep @ [ mk x (build dep) ]))
    in
    match g with
    | Ast.And _ -> split flatten_and build_and
    | Ast.Or _ -> split flatten_or build_or
    | _ -> mk x g

and rw_t ctx path (t : Ast.term) : Ast.term =
  match t with
  | Ast.Const _ | Ast.TVar _ -> t
  | Ast.Add (a, b) -> (
      let a' = rw_t ctx (path @ [ "add.l" ]) a
      and b' = rw_t ctx (path @ [ "add.r" ]) b in
      let t' = Ast.Add (a', b') in
      match (a', b') with
      | Ast.Const p, Ast.Const q ->
          fire_t ctx "rw-const-fold" path t' (Ast.Const (Q.add p q))
      | Ast.Const z, u when Q.is_zero z -> fire_t ctx "rw-const-fold" path t' u
      | u, Ast.Const z when Q.is_zero z -> fire_t ctx "rw-const-fold" path t' u
      | _ -> t')
  | Ast.Mul (a, b) -> (
      let a' = rw_t ctx (path @ [ "mul.l" ]) a
      and b' = rw_t ctx (path @ [ "mul.r" ]) b in
      let t' = Ast.Mul (a', b') in
      match (a', b') with
      | Ast.Const p, Ast.Const q ->
          fire_t ctx "rw-const-fold" path t' (Ast.Const (Q.mul p q))
      | Ast.Const z, _ when Q.is_zero z ->
          fire_t ctx "rw-const-fold" path t' (Ast.Const Q.zero)
      | _, Ast.Const z when Q.is_zero z ->
          fire_t ctx "rw-const-fold" path t' (Ast.Const Q.zero)
      | Ast.Const o, u when Q.equal o Q.one ->
          fire_t ctx "rw-const-fold" path t' u
      | u, Ast.Const o when Q.equal o Q.one ->
          fire_t ctx "rw-const-fold" path t' u
      | _ -> t')
  | Ast.Sum s ->
      let spath = path @ [ "sum" ] in
      let gamma = rw_f ctx (spath @ [ "gamma" ]) s.Ast.gamma in
      let guard = rw_f ctx (spath @ [ "guard" ]) s.Ast.guard in
      let end_body = rw_f ctx (spath @ [ "end" ]) s.Ast.end_body in
      let s' = { s with Ast.gamma; guard; end_body } in
      let t' = Ast.Sum s' in
      let guard_empty =
        match Range.truth guard with
        | Some false -> true
        | _ ->
            Var.Set.exists
              (fun v ->
                match Range.bounds_of ?db:ctx.db v guard with
                | Range.Empty, _ -> true
                | _ -> false)
              (Var.Set.union (Var.Set.of_list s'.Ast.w) (Ast.free_vars guard))
      in
      let end_empty =
        match Range.bounds_of ?db:ctx.db s'.Ast.end_y end_body with
        | Range.Empty, _ -> true
        | _ -> ( match Range.truth end_body with Some false -> true | _ -> false)
      in
      if guard_empty || end_empty then
        fire_t ctx "rw-empty-sum" path t' (Ast.Const Q.zero)
      else
        (* hoist summation-tuple-independent guard conjuncts ahead of the
           dependent ones (side condition: pointwise-total conjuncts, so
           the reorder cannot change evaluation behaviour) *)
        let gs = flatten_and guard [] in
        if List.length gs > 1 && List.for_all pointwise_total gs then begin
          let wset = Var.Set.of_list s'.Ast.w in
          let indep, dep =
            List.partition
              (fun c -> Var.Set.disjoint (Ast.free_vars c) wset)
              gs
          in
          if indep = [] || dep = [] then t'
          else
            let hoisted = indep @ dep in
            if List.for_all2 Plan.equal_formula hoisted gs then t'
            else
              fire_t ctx "rw-guard-hoist" path t'
                (Ast.Sum { s' with Ast.guard = build_and hoisted })
        end
        else t'

(* ------------------------------------------------------------------ *)
(* The fixpoint driver                                                 *)
(* ------------------------------------------------------------------ *)

(* The rules are reductive (folding, elimination) or idempotent
   canonicalizations (atom normal forms, sorting, hoisting), so the
   fixpoint is reached in a handful of passes; the cap is a safety valve,
   not a tuning knob. *)
let max_passes = 8

let rewrite ?db ?(verify = false) ?(trace = false) f =
  let ctx = { db; verify; trace; steps = []; refuted = []; fired = 0 } in
  let atoms_before = (Dispatch.profile_formula f).Dispatch.atoms in
  let rec fix passes f =
    if passes >= max_passes then (f, passes)
    else
      let f' = rw_f ctx [] f in
      if Plan.equal_formula f' f then (f, passes + 1) else fix (passes + 1) f'
  in
  let rewritten, passes = fix 0 f in
  let atoms_after = (Dispatch.profile_formula rewritten).Dispatch.atoms in
  if T.enabled () then begin
    T.add tm_fired ctx.fired;
    T.add tm_passes passes;
    if atoms_after < atoms_before then
      T.add tm_atoms_elim (atoms_before - atoms_after)
  end;
  {
    rewritten;
    steps = List.rev ctx.steps;
    refuted = List.rev ctx.refuted;
    passes;
    fired = ctx.fired;
    atoms_before;
    atoms_after;
  }

(* ------------------------------------------------------------------ *)
(* Normal-form memo                                                    *)
(* ------------------------------------------------------------------ *)

(* [formula] runs on every plan-cache lookup (the planner threads it
   through [Plan.cached ~normalize]), so a hot query shape must pay a
   hash and a structural compare, not a rule fixpoint.  Keyed on the
   formula plus the database's physical identity: databases are immutable
   values here, so [==] is sound and an equal-but-rebuilt database merely
   misses.  Bounded with a wholesale reset at capacity — the live working
   set mirrors the plan cache's, which is far smaller. *)

let memo_cap = 1024

let memo : (int, (Db.t option * Ast.formula * Ast.formula) list) Hashtbl.t =
  Hashtbl.create 256

let memo_size = ref 0
let memo_lock = Mutex.create ()

let same_db a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a == b
  | _ -> false

let clear_memo () =
  Mutex.protect memo_lock (fun () ->
      Hashtbl.reset memo;
      memo_size := 0)

let formula ?db f =
  let h = Plan.hash_formula f in
  let hit =
    Mutex.protect memo_lock (fun () ->
        match Hashtbl.find_opt memo h with
        | None -> None
        | Some entries ->
            List.find_map
              (fun (db', f', g) ->
                if same_db db' db && Plan.equal_formula f' f then Some g
                else None)
              entries)
  in
  match hit with
  | Some g -> g
  | None ->
      let g = (rewrite ?db f).rewritten in
      Mutex.protect memo_lock (fun () ->
          if !memo_size >= memo_cap then begin
            Hashtbl.reset memo;
            memo_size := 0
          end;
          let entries =
            Option.value ~default:[] (Hashtbl.find_opt memo h)
          in
          Hashtbl.replace memo h ((db, f, g) :: entries);
          incr memo_size);
      g

let diagnostics (res : result) =
  let steps =
    List.map
      (fun s ->
        Diagnostic.info ~code:s.rule ~path:s.path "%s  ==>  %s" s.before
          s.after)
      res.steps
  in
  let refuted =
    List.map
      (fun r ->
        let pt =
          Var.Map.bindings r.witness
          |> List.map (fun (v, q) ->
                 Printf.sprintf "%s=%s" (Var.name v) (Q.to_string q))
          |> String.concat " "
        in
        Diagnostic.error ~code:"rw-unsound" ~path:r.refuted_path
          "rule %s refuted by Equiv at point %s" r.refuted_rule pt)
      res.refuted
  in
  refuted @ steps
