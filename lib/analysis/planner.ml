open Cqa_core

let hint_of ?db ?options () f =
  Some (Analyzer.analyze ?db ?options (Analyzer.Formula f)).Analyzer.hint

let compile ?db ?options ?budget ?params ?coords f =
  Plan.cached ~hint_of:(hint_of ?db ?options ()) ?budget ?params ?coords f
