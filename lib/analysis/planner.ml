open Cqa_core
module T = Cqa_telemetry.Telemetry

(* Shares the atomic with Plan's own counter (the telemetry registry is
   name-keyed): a front-line memo hit *is* a plan-cache hit, just one that
   skipped the rewrite and the shape hash too. *)
let tm_cache_hit = T.counter "plan.cache.hit"

let hint_of ?db ?options () f =
  Some (Analyzer.analyze ?db ?options (Analyzer.Formula f)).Analyzer.hint

(* ------------------------------------------------------------------ *)
(* Front-line whole-plan memo                                          *)
(* ------------------------------------------------------------------ *)

(* [Plan.cached ~normalize] must rewrite and alpha-hash on every lookup —
   the cache is keyed on the rewritten normal form.  That is the right
   authority on a miss, but a warm server replays the *same spelling*
   thousands of times, and paying rewrite-memo + alpha + shape-hash per
   replay roughly doubles the PR 7 warm-hit cost.  So the planner keeps a
   bounded first-line memo from the raw question — (formula, database
   identity, params, coords, budget) — straight to the compiled plan.
   Entries are stamped with {!Plan.cache_generation} and die wholesale on
   {!Plan.clear_cache}, so reset semantics (tests, benches, the server's
   [reset] op) see one coherent cache.  [options] is deliberately not in
   the key: like the plan cache itself, a hit returns the earlier plan
   with the earlier hint. *)

type entry = {
  gen : int;
  db : Db.t option;  (* physical identity — databases are immutable *)
  f : Ast.formula;
  params : Cqa_logic.Var.t array;
  coords : Cqa_logic.Var.t array option;
  budget : float;
  plan : Plan.t;
}

let memo_cap = 512
let memo : (int, entry list) Hashtbl.t = Hashtbl.create 128
let memo_size = ref 0
let memo_lock = Mutex.create ()

let same_db a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a == b
  | _ -> false

let vars_eq a b =
  Array.length a = Array.length b && Array.for_all2 Cqa_logic.Var.equal a b

let coords_eq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> vars_eq a b
  | _ -> false

let clear_memo () =
  Mutex.protect memo_lock (fun () ->
      Hashtbl.reset memo;
      memo_size := 0)

let compile ?db ?options ?budget ?params ?coords f =
  let budget' = Option.value budget ~default:Dispatch.default_budget in
  let params' = Option.value params ~default:[||] in
  let gen = Plan.cache_generation () in
  let h = Plan.hash_formula f in
  let hit =
    Mutex.protect memo_lock (fun () ->
        match Hashtbl.find_opt memo h with
        | None -> None
        | Some entries ->
            List.find_map
              (fun e ->
                if
                  e.gen = gen && same_db e.db db && e.budget = budget'
                  && vars_eq e.params params' && coords_eq e.coords coords
                  && Plan.equal_formula e.f f
                then Some e.plan
                else None)
              entries)
  in
  match hit with
  | Some p ->
      T.incr tm_cache_hit;
      p
  | None ->
      let p =
        Plan.cached
          ~normalize:(fun f -> Rewrite.formula ?db f)
          ~hint_of:(hint_of ?db ?options ())
          ?budget ?params ?coords f
      in
      Mutex.protect memo_lock (fun () ->
          if !memo_size >= memo_cap then begin
            Hashtbl.reset memo;
            memo_size := 0
          end;
          let entries = Option.value ~default:[] (Hashtbl.find_opt memo h) in
          Hashtbl.replace memo h
            ({
               gen;
               db;
               f;
               params = params';
               coords;
               budget = budget';
               plan = p;
             }
            :: entries);
          incr memo_size);
      p
