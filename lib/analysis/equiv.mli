(** Semantic equivalence of FO + LIN queries on the exact-semilinear
    fragment.

    Two queries are equivalent when they define the same set over the union
    of their free variables.  On the fragment the paper's Theorem 3 engine
    handles exactly — atoms linear in the live variables, schema atoms
    inlined from a semi-linear database, closed summations evaluated away —
    this is decidable: reduce both sides to pure FO + LIN
    ({!Cqa_core.Eval.reduce_linear}), eliminate quantifiers from both
    directions of the symmetric difference, and test emptiness with the
    {!Cqa_linear.Fourier_motzkin} oracle.  A nonempty difference yields a
    rational witness point ({!Cqa_linear.Fourier_motzkin.witness}); inputs
    outside the fragment (nonlinear atoms, semi-algebraic relations, open
    summations) or past the cost cap return [Unknown] with the reason — the
    procedure never guesses. *)

open Cqa_arith
open Cqa_logic
open Cqa_core

type verdict =
  | Equal  (** the two queries define the same set *)
  | Distinct of Q.t Var.Map.t
      (** a rational point in the symmetric difference: it satisfies
          exactly one of the two queries *)
  | Unknown of string
      (** out of the decidable fragment, or past the cost cap *)

val check : ?db:Db.t -> ?budget:float -> Ast.formula -> Ast.formula -> verdict
(** Decide [q1 == q2] over the union of their free variables.  [db]
    (default: the empty database over the empty schema) supplies the
    semi-linear interpretations of schema atoms; a relation the database
    does not carry makes the verdict [Unknown].  [budget] (default
    [infinity]) caps {!Cqa_core.Dispatch.projected_qe_atoms} of the
    symmetric difference: past it the verdict is [Unknown] rather than a
    potentially exponential elimination. *)

val equal : ?db:Db.t -> ?budget:float -> Ast.formula -> Ast.formula -> bool
(** [check] collapsed to a boolean: [true] only on [Equal]. *)

val verdict_to_string : verdict -> string
(** ["equal"], ["distinct"] or ["unknown"] (the JSON discriminants). *)

val pp_verdict : Format.formatter -> verdict -> unit
(** Human rendering, witness point or reason included. *)
