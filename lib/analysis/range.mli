(** Pass 3: range restriction and finiteness.

    Interval abstract interpretation over single-variable linear atoms,
    polarity-aware, with relation atoms bounded through
    {!Cqa_linear.Semilinear.bounding_box} when a database is supplied.  Used
    to flag END sections that do not pin their variable to a finite interval
    (the finiteness precondition of Lemma 4's range-restricted sums),
    trivially true/false atoms, dead conjunction/disjunction branches, and
    conjunctions whose interval meet is already empty. *)

open Cqa_arith
open Cqa_logic
open Cqa_core

type bound = Q.t option
(** [None] is the corresponding infinity. *)

type abs = Empty | Itv of bound * bound

val pp_abs : Format.formatter -> abs -> unit

val bounds_of : ?db:Db.t -> Var.t -> Ast.formula -> abs * bool
(** Sound over-approximation of the set of values of the variable consistent
    with the formula (other variables unconstrained).  The flag is true when
    the result leans on an atom the analysis cannot see through (an
    uninterpreted or unbounded relation), in which case an unbounded verdict
    is only "not provably bounded". *)

val truth : Ast.formula -> bool option
(** Constant folding: [Some] when the formula's truth value is decided by
    its constant atoms alone. *)

val check_formula : ?db:Db.t -> Ast.formula -> Diagnostic.t list
val check_term : ?db:Db.t -> Ast.term -> Diagnostic.t list
(** Codes: [unbounded-guard] (warning: END interval unbounded on a side),
    [possibly-unbounded] (info: unbounded only because a relation atom is
    opaque), [empty-end] (warning: END body unsatisfiable), [empty-sum]
    (warning: guard constant-folds to false), [trivial-atom] (warning),
    [dead-branch] (warning), [unsat-conjunction] (warning). *)
