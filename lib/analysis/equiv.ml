open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_core
module T = Cqa_telemetry.Telemetry

(* Counters follow the plan.* convention: verdict mix depends on what the
   caller chose to compare, not on engine internals, but the checker sits
   on the plan-compilation path (verify mode), so it reports under the
   same exempt namespace. *)
let tm_equal = T.counter "plan.equiv.equal"
let tm_distinct = T.counter "plan.equiv.distinct"
let tm_unknown = T.counter "plan.equiv.unknown"

type verdict = Equal | Distinct of Q.t Var.Map.t | Unknown of string

let default_db = Db.empty Schema.empty

(* Reduce to pure FO + LIN or say why we cannot.  [reduce_linear] raises
   [Unsupported] on nonlinear atoms and semi-algebraic relations and
   [Not_found] on relations the database does not carry at all; both are
   fragment verdicts here, not errors. *)
let reduce db f =
  match Eval.reduce_linear db Var.Map.empty f with
  | l -> Ok l
  | exception Eval.Unsupported m -> Error m
  | exception Not_found ->
      Error "schema atom over a relation the database does not define"
  | exception Invalid_argument m -> Error m

let check ?(db = default_db) ?(budget = infinity) q1 q2 =
  match (reduce db q1, reduce db q2) with
  | Error m, _ | _, Error m ->
      T.incr tm_unknown;
      Unknown m
  | Ok l1, Ok l2 -> (
      (* Both directions of the symmetric difference go through full QE;
         guard the worst case with the same projection the dispatch layer
         uses, over the combined atom count. *)
      let projected =
        Dispatch.projected_qe_atoms
          (Dispatch.add_profile
             (Dispatch.profile_formula q1)
             (Dispatch.profile_formula q2))
      in
      if projected > budget then begin
        T.incr tm_unknown;
        Unknown
          (Printf.sprintf
             "projected QE cost %.3g exceeds the equivalence budget %.3g"
             projected budget)
      end
      else
        match Fourier_motzkin.equivalence_witness l1 l2 with
        | None ->
            T.incr tm_equal;
            Equal
        | Some pt ->
            T.incr tm_distinct;
            (* make the witness total over both queries' free variables so
               it can be plugged into either side as-is *)
            let pt =
              Var.Set.fold
                (fun v env ->
                  if Var.Map.mem v env then env else Var.Map.add v Q.zero env)
                (Var.Set.union (Ast.free_vars q1) (Ast.free_vars q2))
                pt
            in
            Distinct pt)

let equal ?db ?budget q1 q2 =
  match check ?db ?budget q1 q2 with
  | Equal -> true
  | Distinct _ | Unknown _ -> false

let verdict_to_string = function
  | Equal -> "equal"
  | Distinct _ -> "distinct"
  | Unknown _ -> "unknown"

let pp_verdict fmt = function
  | Equal -> Format.pp_print_string fmt "equal"
  | Distinct pt ->
      Format.fprintf fmt "distinct at";
      Var.Map.iter
        (fun v q -> Format.fprintf fmt " %s=%a" (Var.name v) Q.pp q)
        pt
  | Unknown m -> Format.fprintf fmt "unknown: %s" m
