(** Structured diagnostics produced by the static analyzer: a severity, a
    stable machine-readable code, a path into the AST, and a human message.
    Rendered as text, JSON, or s-expressions. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string
val compare_severity : severity -> severity -> int
(** [Error] greatest. *)

type t = {
  severity : severity;
  code : string;  (** stable kind id, e.g. ["nondeterministic-gamma"] *)
  path : string list;  (** root-to-node AST path segments *)
  message : string;
}

val info : code:string -> path:string list -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : code:string -> path:string list -> ('a, Format.formatter, unit, t) format4 -> 'a
val error : code:string -> path:string list -> ('a, Format.formatter, unit, t) format4 -> 'a
(** Format-string constructors: [error ~code ~path "m = %d" 3]. *)

val path_to_string : string list -> string
(** ["/sum/gamma"]; the empty path renders as ["/"]. *)

val sort : t list -> t list
(** Most severe first; ties broken by path, then code (stable report
    order). *)

val count : severity -> t list -> int
val has_errors : t list -> bool

val pp : Format.formatter -> t -> unit
(** [error[code] at /path: message]. *)

val pp_list : Format.formatter -> t list -> unit

val json_escape : string -> string
(** JSON string-literal escaping (shared with {!Analyzer}'s renderer). *)

val to_json : t -> string
val list_to_json : t list -> string

val to_sexp : t -> string
