open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly
open Cqa_core

type bound = Q.t option
type abs = Empty | Itv of bound * bound

let full = Itv (None, None)

let pp_abs fmt = function
  | Empty -> Format.pp_print_string fmt "empty"
  | Itv (lo, hi) ->
      let pb inf fmt = function
        | None -> Format.pp_print_string fmt inf
        | Some q -> Q.pp fmt q
      in
      Format.fprintf fmt "[%a, %a]" (pb "-inf") lo (pb "+inf") hi

(* The doubly-bounded cases delegate to Cqa_arith.Interval so the
   analyzer's enclosures and the root-isolation intervals share one
   endpoint discipline — Interval's documented outward rounding mode,
   under which the lower and upper sides are treated symmetrically
   (enclosures only ever grow).  Every [Itv (Some l, Some h)] built here
   satisfies [l <= h]: atoms produce well-formed intervals and meet/join
   preserve the invariant, so [Interval.make] cannot raise. *)
let of_interval i = Itv (Some (Interval.lo i), Some (Interval.hi i))

let meet a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Itv (Some l1, Some h1), Itv (Some l2, Some h2) -> (
      match Interval.intersect (Interval.make l1 h1) (Interval.make l2 h2) with
      | None -> Empty
      | Some i -> of_interval i)
  | Itv (l1, h1), Itv (l2, h2) ->
      let lo =
        match (l1, l2) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (Q.max a b)
      in
      let hi =
        match (h1, h2) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (Q.min a b)
      in
      (match (lo, hi) with
      | Some l, Some h when Q.gt l h -> Empty
      | _ -> Itv (lo, hi))

let join a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Itv (Some l1, Some h1), Itv (Some l2, Some h2) ->
      of_interval (Interval.hull (Interval.make l1 h1) (Interval.make l2 h2))
  | Itv (l1, h1), Itv (l2, h2) ->
      let lo =
        match (l1, l2) with
        | None, _ | _, None -> None
        | Some a, Some b -> Some (Q.min a b)
      in
      let hi =
        match (h1, h2) with
        | None, _ | _, None -> None
        | Some a, Some b -> Some (Q.max a b)
      in
      Itv (lo, hi)

let cmp_holds (op : Ast.cmp) (c : Q.t) =
  match op with
  | Ast.Ceq -> Q.is_zero c
  | Ast.Clt -> Q.lt c Q.zero
  | Ast.Cle -> Q.leq c Q.zero

let rec truth (f : Ast.formula) =
  match f with
  | Ast.True -> Some true
  | Ast.False -> Some false
  | Ast.Rel _ -> None
  | Ast.Cmp (op, a, b) -> (
      match Ast.to_mpoly Ast.(a -! b) with
      | None -> None
      | Some p -> (
          match Mpoly.constant_value p with
          | None -> None
          | Some c -> Some (cmp_holds op c)))
  | Ast.Not g -> Option.map not (truth g)
  | Ast.And (g, h) -> (
      match (truth g, truth h) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Ast.Or (g, h) -> (
      match (truth g, truth h) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | Ast.Exists (_, g) | Ast.Forall (_, g) -> truth g

let bounds_of ?db (y : Var.t) (f : Ast.formula) =
  let unknown = ref false in
  let atom (op : Ast.cmp) a b pos =
    match Ast.to_mpoly Ast.(a -! b) with
    | None ->
        unknown := true;
        full
    | Some p -> (
        match Mpoly.to_linexpr p with
        | None ->
            unknown := true;
            full
        | Some e -> (
            match Linexpr.coeffs e with
            | [] -> (
                let c = Linexpr.constant e in
                let holds = cmp_holds op c in
                match if pos then holds else not holds with
                | true -> full
                | false -> Empty)
            | [ (v, c) ] when Var.equal v y && not (Q.is_zero c) -> (
                (* c*y + d OP 0, threshold t0 = -d/c *)
                let t0 = Q.div (Q.neg (Linexpr.constant e)) c in
                let pos_c = Q.gt c Q.zero in
                match (op, pos) with
                | Ast.Ceq, true -> Itv (Some t0, Some t0)
                | Ast.Ceq, false -> full
                | (Ast.Clt | Ast.Cle), true ->
                    if pos_c then Itv (None, Some t0) else Itv (Some t0, None)
                | (Ast.Clt | Ast.Cle), false ->
                    if pos_c then Itv (Some t0, None) else Itv (None, Some t0))
            | coeffs ->
                (* multi-variable atom mentioning y: it may well bound y
                   through the other variables, which this one-variable
                   analysis cannot see *)
                if List.exists (fun (v, _) -> Var.equal v y) coeffs then
                  unknown := true;
                full))
  in
  let rec go pos (f : Ast.formula) =
    match f with
    | Ast.True -> if pos then full else Empty
    | Ast.False -> if pos then Empty else full
    | Ast.Cmp (op, a, b) -> atom op a b pos
    | Ast.Not g -> go (not pos) g
    | Ast.And (g, h) ->
        if pos then meet (go pos g) (go pos h) else join (go pos g) (go pos h)
    | Ast.Or (g, h) ->
        if pos then join (go pos g) (go pos h) else meet (go pos g) (go pos h)
    | Ast.Exists (x, g) | Ast.Forall (x, g) ->
        if Var.equal x y then full else go pos g
    | Ast.Rel (r, args) -> (
        if not pos then full
        else
          match db with
          | None ->
              unknown := true;
              full
          | Some db -> (
              let hits =
                List.mapi (fun i v -> (i, v)) args
                |> List.filter (fun (_, v) -> Var.equal v y)
              in
              match hits with
              | [ (i, _) ] -> (
                  match Db.as_semilinear db r with
                  | Some s -> (
                      match Semilinear.bounding_box s with
                      | Some box when i < Array.length box ->
                          let lo, hi = box.(i) in
                          Itv (Some lo, Some hi)
                      | _ ->
                          unknown := true;
                          full)
                  | None ->
                      unknown := true;
                      full
                  | exception Not_found ->
                      unknown := true;
                      full)
              | [] -> full
              | _ ->
                  unknown := true;
                  full))
  in
  let r = go true f in
  (r, !unknown)

let check ?db diags path0 target =
  let add d = diags := d :: !diags in
  let warn code path fmt =
    Format.kasprintf
      (fun m -> add { Diagnostic.severity = Warning; code; path; message = m })
      fmt
  and info code path fmt =
    Format.kasprintf
      (fun m -> add { Diagnostic.severity = Info; code; path; message = m })
      fmt
  in
  let unsat_conjunction path f =
    let bad =
      Var.Set.fold
        (fun v acc ->
          match acc with
          | Some _ -> acc
          | None -> (
              match bounds_of ?db v f with
              | Empty, _ -> Some v
              | _ -> None))
        (Ast.free_vars f) None
    in
    Option.iter
      (fun v ->
        warn "unsat-conjunction" path
          "interval analysis: %s is constrained to an empty set; this \
           conjunction is unsatisfiable"
          (Var.name v))
      bad
  in
  let rec fwalk in_and path (f : Ast.formula) =
    match f with
    | Ast.True | Ast.False | Ast.Rel _ -> ()
    | Ast.Cmp (_, a, b) ->
        (match truth f with
        | Some bv ->
            warn "trivial-atom" path
              "atom is trivially %s; fold it away"
              (if bv then "true" else "false")
        | None -> ());
        twalk (path @ [ "cmp.l" ]) a;
        twalk (path @ [ "cmp.r" ]) b
    | Ast.Not g -> fwalk false (path @ [ "not" ]) g
    | Ast.And (g, h) ->
        if not in_and then unsat_conjunction path f;
        (match truth g with
        | Some false ->
            warn "dead-branch"
              (path @ [ "and.r" ])
              "unreachable: the left conjunct is trivially false"
        | _ -> ());
        (match truth h with
        | Some false ->
            warn "dead-branch"
              (path @ [ "and.l" ])
              "unreachable: the right conjunct is trivially false"
        | _ -> ());
        fwalk true (path @ [ "and.l" ]) g;
        fwalk true (path @ [ "and.r" ]) h
    | Ast.Or (g, h) ->
        (match truth g with
        | Some true ->
            warn "dead-branch"
              (path @ [ "or.r" ])
              "dead: the left disjunct is trivially true"
        | _ -> ());
        (match truth h with
        | Some true ->
            warn "dead-branch"
              (path @ [ "or.l" ])
              "dead: the right disjunct is trivially true"
        | _ -> ());
        fwalk false (path @ [ "or.l" ]) g;
        fwalk false (path @ [ "or.r" ]) h
    | Ast.Exists (x, g) ->
        fwalk false (path @ [ Printf.sprintf "exists:%s" (Var.name x) ]) g
    | Ast.Forall (x, g) ->
        fwalk false (path @ [ Printf.sprintf "forall:%s" (Var.name x) ]) g
  and twalk path (t : Ast.term) =
    match t with
    | Ast.Const _ | Ast.TVar _ -> ()
    | Ast.Add (a, b) ->
        twalk (path @ [ "add.l" ]) a;
        twalk (path @ [ "add.r" ]) b
    | Ast.Mul (a, b) ->
        twalk (path @ [ "mul.l" ]) a;
        twalk (path @ [ "mul.r" ]) b
    | Ast.Sum s ->
        let spath = path @ [ "sum" ] in
        (* END finiteness: the endpoint set must be a finite union of
           points, so end_y has to be pinned to a bounded interval *)
        (match bounds_of ?db s.Ast.end_y s.Ast.end_body with
        | Empty, _ ->
            warn "empty-end"
              (spath @ [ "end" ])
              "END body is unsatisfiable: the summation ranges over an empty \
               endpoint set"
        | Itv (lo, hi), unk ->
            let missing =
              (match lo with None -> [ "below" ] | Some _ -> [])
              @ match hi with None -> [ "above" ] | Some _ -> []
            in
            if missing <> [] then
              let sides = String.concat " and " missing in
              if unk then
                info "possibly-unbounded"
                  (spath @ [ "end" ])
                  "cannot prove the END section bounds %s %s (a relation or \
                   nonlinear atom is opaque to interval analysis)"
                  (Var.name s.Ast.end_y) sides
              else
                warn "unbounded-guard"
                  (spath @ [ "end" ])
                  "range restriction is not finite: the END section leaves \
                   %s unbounded %s, so the summation index set need not be \
                   finite"
                  (Var.name s.Ast.end_y) sides);
        (* guard satisfiability *)
        (match truth s.Ast.guard with
        | Some false ->
            warn "empty-sum"
              (spath @ [ "guard" ])
              "guard is trivially false; the summation is empty"
        | _ ->
            let bad =
              Var.Set.fold
                (fun v acc ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                      match bounds_of ?db v s.Ast.guard with
                      | Empty, _ -> Some v
                      | _ -> None))
                (Ast.free_vars s.Ast.guard) None
            in
            Option.iter
              (fun v ->
                warn "empty-sum"
                  (spath @ [ "guard" ])
                  "interval analysis: the guard constrains %s to an empty \
                   set; the summation is empty"
                  (Var.name v))
              bad);
        fwalk false (spath @ [ "guard" ]) s.Ast.guard;
        fwalk false (spath @ [ "gamma" ]) s.Ast.gamma;
        fwalk false (spath @ [ "end" ]) s.Ast.end_body
  in
  (match target with
  | `F f -> fwalk false path0 f
  | `T t -> twalk path0 t);
  ()

let check_formula ?db f =
  let diags = ref [] in
  check ?db diags [] (`F f);
  List.rev !diags

let check_term ?db t =
  let diags = ref [] in
  check ?db diags [] (`T t);
  List.rev !diags
