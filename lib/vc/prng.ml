open Cqa_arith

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits53 t = Int64.to_int (Int64.shift_right_logical (int64 t) 11)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  bits53 t mod bound

let float t = ldexp (float_of_int (bits53 t)) (-53)

let two53 = Bigint.shift_left Bigint.one 53

let q_unit t = Q.make (Bigint.of_int (bits53 t)) two53

let q_in t lo hi = Q.add lo (Q.mul (q_unit t) (Q.sub hi lo))

let split t =
  let s = int64 t in
  { state = s }
