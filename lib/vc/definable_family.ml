let of_oracle ~params ~ground ~mem =
  let ground_arr = Array.of_list ground in
  let sets =
    List.map (fun a -> Array.map (fun x -> mem a x) ground_arr) params
  in
  Setsystem.create ~ground_size:(Array.length ground_arr) sets

let empirical_vc_dim ~params ~ground ~mem =
  Setsystem.vc_dimension (of_oracle ~params ~ground ~mem)
