open Cqa_arith

type sample = Q.t array list

let random_sample ~prng ~dim ~n =
  List.init n (fun _ -> Array.init dim (fun _ -> Prng.q_unit prng))

let halton_sample ~dim ~n = Halton.points ~dim n

let fraction_in sample mem =
  match sample with
  | [] -> invalid_arg "Approx_volume.fraction_in: empty sample"
  | _ ->
      let hits = List.length (List.filter mem sample) in
      Q.of_ints hits (List.length sample)

let estimate ~sample ~mem = fraction_in sample mem

let sample_size = Bounds.blumer_sample_size

let estimate_family ~sample ~mem params =
  List.map (fun a -> (a, fraction_in sample (mem a))) params
