open Cqa_arith
module T = Cqa_telemetry.Telemetry

(* Telemetry probes (zero-cost while disabled): points drawn, membership
   tests made and accepted (the acceptance rate is accepted/tests).  Under
   domain-parallel estimation the counters are atomic; their totals for a
   fixed (seed, n, domains) run are deterministic. *)
let tm_drawn = T.counter "vc.samples.drawn"
let tm_tests = T.counter "vc.membership_tests"
let tm_accepted = T.counter "vc.samples.accepted"
let tm_estimates = T.counter "vc.estimates"

type sample = Q.t array list

let random_sample ~prng ~dim ~n =
  if T.enabled () then T.add tm_drawn n;
  List.init n (fun _ -> Array.init dim (fun _ -> Prng.q_unit prng))

let halton_sample ~dim ~n =
  if T.enabled () then T.add tm_drawn n;
  Halton.points ~dim n

let fraction_in sample mem =
  match sample with
  | [] -> invalid_arg "Approx_volume.fraction_in: empty sample"
  | _ ->
      let hits, total =
        List.fold_left
          (fun (h, t) pt -> ((if mem pt then h + 1 else h), t + 1))
          (0, 0) sample
      in
      if T.enabled () then begin
        T.incr tm_estimates;
        T.add tm_tests total;
        T.add tm_accepted hits
      end;
      Q.of_ints hits total

let estimate ~sample ~mem = fraction_in sample mem

let sample_size = Bounds.blumer_sample_size

let estimate_family ~sample ~mem params =
  List.map (fun a -> (a, fraction_in sample (mem a))) params

(* ------------------------------------------------------------------ *)
(* Domain-parallel estimation                                          *)
(* ------------------------------------------------------------------ *)

(* The Blumer-sized sample sets of Theorem 4 run to tens of thousands of
   membership tests; they are embarrassingly parallel.  The sample of [n]
   points is split into [domains] chunks, each generated and scored as one
   job on the persistent domain pool.  Chunk PRNGs are split
   deterministically from the caller's generator in chunk order — before
   anything is submitted — so a run is reproducible for a fixed seed and
   domain count whatever the pool does (its adaptive cutoff may run the
   same chunks inline; the decomposition, and hence the estimate, never
   depends on that choice); [domains = 1] (the default) takes exactly the
   sequential path of [random_sample] + [fraction_in]. *)

module Pool = Cqa_conc.Pool

let clamp_domains ~n domains =
  let d = Stdlib.max 1 domains in
  Stdlib.min d (Stdlib.max 1 n)

(* first (n mod k) chunks carry the extra point *)
let chunk_sizes ~n ~chunks =
  let q = n / chunks and r = n mod chunks in
  Array.init chunks (fun i -> if i < r then q + 1 else q)

let count_hits_random ~prng ~dim ~n mem =
  let hits = ref 0 in
  for _ = 1 to n do
    let pt = Array.init dim (fun _ -> Prng.q_unit prng) in
    if mem pt then incr hits
  done;
  if T.enabled () then begin
    T.add tm_drawn n;
    T.add tm_tests n;
    T.add tm_accepted !hits
  end;
  !hits

let estimate_random ?(domains = 1) ~prng ~dim ~n mem =
  if n <= 0 then invalid_arg "Approx_volume.estimate_random: empty sample";
  let domains = clamp_domains ~n domains in
  if domains = 1 then fraction_in (random_sample ~prng ~dim ~n) mem
  else begin
    let sizes = chunk_sizes ~n ~chunks:domains in
    let prngs = Array.init domains (fun _ -> Prng.split prng) in
    let hits = Array.make domains 0 in
    Pool.run_chunks ~label:"vc.random" ~items:n domains (fun i ->
        hits.(i) <- count_hits_random ~prng:prngs.(i) ~dim ~n:sizes.(i) mem);
    T.incr tm_estimates;
    Q.of_ints (Array.fold_left ( + ) 0 hits) n
  end

(* Halton points are indexed, so the sequence is partitioned into [domains]
   contiguous index blocks: the estimate is the same rational for every
   domain count, including 1. *)
let estimate_halton ?(domains = 1) ~dim ~n mem =
  if n <= 0 then invalid_arg "Approx_volume.estimate_halton: empty sample";
  let domains = clamp_domains ~n domains in
  if domains = 1 then fraction_in (halton_sample ~dim ~n) mem
  else begin
    let sizes = chunk_sizes ~n ~chunks:domains in
    let starts = Array.make domains 1 in
    for i = 1 to domains - 1 do
      starts.(i) <- starts.(i - 1) + sizes.(i - 1)
    done;
    let hits = Array.make domains 0 in
    Pool.run_chunks ~label:"vc.halton" ~items:n domains (fun i ->
        let h = ref 0 in
        for j = starts.(i) to starts.(i) + sizes.(i) - 1 do
          if mem (Halton.point ~dim j) then incr h
        done;
        if T.enabled () then begin
          T.add tm_drawn sizes.(i);
          T.add tm_tests sizes.(i);
          T.add tm_accepted !h
        end;
        hits.(i) <- !h);
    T.incr tm_estimates;
    Q.of_ints (Array.fold_left ( + ) 0 hits) n
  end

(* Theorem-4 shape: each domain generates its chunk of the shared sample
   once and scores it against every parameter, so the combined counts are
   those of one sample of [n] points scored against all parameters. *)
let estimate_family_random ?(domains = 1) ~prng ~dim ~n ~mem params =
  if n <= 0 then invalid_arg "Approx_volume.estimate_family_random: empty sample";
  let domains = clamp_domains ~n domains in
  if domains = 1 then begin
    let sample = random_sample ~prng ~dim ~n in
    estimate_family ~sample ~mem params
  end
  else begin
    let sizes = chunk_sizes ~n ~chunks:domains in
    let prngs = Array.init domains (fun _ -> Prng.split prng) in
    let params_arr = Array.of_list params in
    let counts = Array.make domains [||] in
    Pool.run_chunks ~label:"vc.family" ~items:n domains (fun i ->
        let chunk = random_sample ~prng:prngs.(i) ~dim ~n:sizes.(i) in
        counts.(i) <-
          Array.map
            (fun a ->
              let test = mem a in
              let h =
                List.fold_left
                  (fun h pt -> if test pt then h + 1 else h)
                  0 chunk
              in
              if T.enabled () then begin
                T.add tm_tests sizes.(i);
                T.add tm_accepted h
              end;
              h)
            params_arr);
    let totals = Array.make (Array.length params_arr) 0 in
    Array.iter
      (fun per_param ->
        Array.iteri (fun j h -> totals.(j) <- totals.(j) + h) per_param)
      counts;
    List.mapi (fun j a -> (a, Q.of_ints totals.(j) n)) params
  end

(* ------------------------------------------------------------------ *)
(* Retained samples (incremental re-scoring)                           *)
(* ------------------------------------------------------------------ *)

(* The exact points [estimate_random] would draw for the same prng, size
   and domain count: the [domains = 1] branch is [random_sample] itself,
   and the chunked branch replays [estimate_random]'s decomposition (split
   the prngs in chunk order, draw each chunk with the generation loop of
   the chunk scorer).  Callers retain the points and a membership bitmap
   so a database update can re-score only the points a delta touches;
   [fraction_of_bits] then reproduces [estimate_random]'s rational. *)
let sample_points ?(domains = 1) ~prng ~dim n =
  if n <= 0 then invalid_arg "Approx_volume.sample_points: empty sample";
  let domains = clamp_domains ~n domains in
  if domains = 1 then Array.of_list (random_sample ~prng ~dim ~n)
  else begin
    let sizes = chunk_sizes ~n ~chunks:domains in
    let prngs = Array.init domains (fun _ -> Prng.split prng) in
    let out = Array.make n [||] in
    let pos = ref 0 in
    for i = 0 to domains - 1 do
      let prng = prngs.(i) in
      for _ = 1 to sizes.(i) do
        out.(!pos) <- Array.init dim (fun _ -> Prng.q_unit prng);
        incr pos
      done
    done;
    if T.enabled () then T.add tm_drawn n;
    out
  end

let score_sample mem pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Approx_volume.score_sample: empty sample";
  let bits = Bytes.make n '\000' in
  let hits = ref 0 in
  Array.iteri
    (fun i pt ->
      if mem pt then begin
        Bytes.set bits i '\001';
        incr hits
      end)
    pts;
  if T.enabled () then begin
    T.incr tm_estimates;
    T.add tm_tests n;
    T.add tm_accepted !hits
  end;
  bits

let fraction_of_bits bits =
  let n = Bytes.length bits in
  if n = 0 then invalid_arg "Approx_volume.fraction_of_bits: empty sample";
  let hits = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr hits) bits;
  Q.of_ints !hits n
