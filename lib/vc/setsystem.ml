module Sset = Set.Make (struct
  type t = bool array

  let compare = Stdlib.compare
end)

type t = { ground_size : int; sets : bool array array }

let create ~ground_size sets =
  List.iter
    (fun s ->
      if Array.length s <> ground_size then
        invalid_arg "Setsystem.create: vector length mismatch")
    sets;
  let distinct = Sset.elements (Sset.of_list sets) in
  { ground_size; sets = Array.of_list distinct }

let of_mem ~ground_size ~set_count mem =
  create ~ground_size
    (List.init set_count (fun j -> Array.init ground_size (fun i -> mem j i)))

let ground_size t = t.ground_size
let set_count t = Array.length t.sets

let shatters t points =
  let k = List.length points in
  if k > 62 then invalid_arg "Setsystem.shatters: too many points";
  let traces = Hashtbl.create (1 lsl k) in
  Array.iter
    (fun s ->
      let trace =
        List.fold_left (fun acc i -> (acc lsl 1) lor (if s.(i) then 1 else 0)) 0 points
      in
      Hashtbl.replace traces trace ())
    t.sets;
  Hashtbl.length traces = 1 lsl k

let shattered_witness t k =
  if k = 0 then Some []
  else begin
    let n = t.ground_size in
    let chosen = Array.make k 0 in
    let rec search depth start =
      if depth = k then begin
        let pts = Array.to_list chosen in
        if shatters t pts then Some pts else None
      end
      else begin
        let rec try_from i =
          if i > n - (k - depth) then None
          else begin
            chosen.(depth) <- i;
            (* prune: the chosen prefix must itself be shattered *)
            let prefix = Array.to_list (Array.sub chosen 0 (depth + 1)) in
            if shatters t prefix then begin
              match search (depth + 1) (i + 1) with
              | Some _ as r -> r
              | None -> try_from (i + 1)
            end
            else try_from (i + 1)
          end
        in
        try_from start
      end
    in
    search 0 0
  end

let vc_dimension t =
  if Array.length t.sets = 0 then -1
  else begin
    (* Sauer-Shelah: a system shattering k points has >= 2^k sets *)
    let max_k =
      let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
      min t.ground_size (log2 (Array.length t.sets) 0)
    in
    let rec best k =
      if k > max_k then k - 1
      else begin
        match shattered_witness t k with
        | Some _ -> best (k + 1)
        | None -> k - 1
      end
    in
    best 1
  end
