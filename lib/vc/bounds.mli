(** Sample-complexity and formula-size bounds quoted by the paper.

    - the Blumer-Ehrenfeucht-Haussler-Warmuth sample size
      [M > max (4/eps log2 (2/delta), 8d/eps log2 (13/eps))] behind Lemma 1
      and Theorem 4;
    - the Goldberg-Jerrum bound instantiating the constant [C] of
      Proposition 6, [C = 16 k (p+q) (log2 (8 e d p s) + 1)];
    - a first-principles size model of the Karpinski-Macintyre/Koiran
      derandomized approximation formula, reproducing the Section 3 example's
      conclusion that the construction blows up beyond practical use. *)

val blumer_sample_size : eps:float -> delta:float -> vc_dim:int -> int
(** Smallest integer [M] satisfying the BEHW bound. *)

val goldberg_jerrum_c :
  k:int -> p:int -> q:int -> d:int -> s:int -> float
(** The constant [C] of Proposition 6 for an active-semantics FO + POLY
    query: [k] = arity of the definable family, [q] = quantifier rank, [p] =
    maximal schema arity, [d] = maximal polynomial degree, [s] = number of
    atomic subformulae. *)

val vc_upper_bound : c:float -> db_size:int -> float
(** [C log2 |D|], the Proposition 6 bound. *)

type km_size = {
  sample_size : int;  (** M points in I^m *)
  sample_vars : int;  (** M * m quantified reals per sample *)
  translates : int;  (** Lautemann-style covering translates *)
  quantifiers : float;  (** total quantified real variables *)
  atoms : float;  (** total atomic subformulae *)
}

val km_formula_size :
  eps:float -> delta:float -> vc_dim:int -> m:int -> atoms_in_phi:int -> km_size
(** Size model of the derandomized epsilon-approximation formula: a sample
    of [M = blumer_sample_size (eps/2) delta d] points in [I^m] is
    quantified per translate, [t = ceil (M*m / log2 (1/delta))] translates
    cover the cube, and each translate re-evaluates the [atoms_in_phi]-atom
    input formula on all [M] sample points.  The Section 3 example
    instantiates this at [eps = 1/10]. *)
