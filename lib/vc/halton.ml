open Cqa_arith

let primes =
  [| 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
     71; 73; 79; 83; 89; 97 |]

let radical_inverse ~base i =
  if base < 2 then invalid_arg "Halton.radical_inverse: base < 2";
  let rec go i f acc =
    if i = 0 then acc
    else begin
      let f = Q.div f (Q.of_int base) in
      go (i / base) f (Q.add acc (Q.mul_int f (i mod base)))
    end
  in
  go i Q.one Q.zero

let point ~dim i =
  if dim > Array.length primes then invalid_arg "Halton.point: dimension too large";
  Array.init dim (fun d -> radical_inverse ~base:primes.(d) i)

let points ~dim n = List.init n (fun i -> point ~dim (i + 1))
