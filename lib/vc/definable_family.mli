(** Materialization of definable families F_phi(D) = { phi(a, D) | a } on
    finite ground sets, for the empirical VC-dimension experiments of
    Propositions 5 and 6. *)

open Cqa_arith

val of_oracle :
  params:'a list -> ground:Q.t array list -> mem:('a -> Q.t array -> bool) -> Setsystem.t
(** Restrict the family [{ {x | mem a x} : a in params }] to the finite
    ground set. *)

val empirical_vc_dim :
  params:'a list -> ground:Q.t array list -> mem:('a -> Q.t array -> bool) -> int
(** VC dimension of the restricted system: a lower bound on the true VC
    dimension of the family. *)
