let log2 x = log x /. log 2.0

let blumer_sample_size ~eps ~delta ~vc_dim =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Bounds.blumer_sample_size: eps";
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Bounds.blumer_sample_size: delta";
  let a = 4.0 /. eps *. log2 (2.0 /. delta) in
  let b = 8.0 *. float_of_int vc_dim /. eps *. log2 (13.0 /. eps) in
  int_of_float (ceil (max a b)) + 1

let goldberg_jerrum_c ~k ~p ~q ~d ~s =
  let e = exp 1.0 in
  16.0 *. float_of_int k
  *. float_of_int (p + q)
  *. (log2 (8.0 *. e *. float_of_int d *. float_of_int p *. float_of_int s) +. 1.0)

let vc_upper_bound ~c ~db_size = c *. log2 (float_of_int (max 2 db_size))

type km_size = {
  sample_size : int;
  sample_vars : int;
  translates : int;
  quantifiers : float;
  atoms : float;
}

let km_formula_size ~eps ~delta ~vc_dim ~m ~atoms_in_phi =
  (* the construction needs eps/2-accuracy from the sample (footnote 1 of
     the paper) *)
  let sample_size = blumer_sample_size ~eps:(eps /. 2.0) ~delta ~vc_dim in
  let sample_vars = sample_size * m in
  let translates =
    int_of_float (ceil (float_of_int sample_vars /. log2 (1.0 /. delta))) + 1
  in
  (* one universally quantified sample block plus one block per translate *)
  let quantifiers = float_of_int sample_vars *. float_of_int (translates + 1) in
  (* each translate re-evaluates phi on each of the M sample points *)
  let atoms =
    float_of_int atoms_in_phi *. float_of_int sample_size *. float_of_int translates
  in
  { sample_size; sample_vars; translates; quantifiers; atoms }
