(** Deterministic splitmix64 pseudo-random generator.  Experiments are
    seeded explicitly so every run of the harness is reproducible; the
    paper's randomized constructions (the witness operator W of Theorem 4)
    draw from here. *)

open Cqa_arith

type t

val create : int -> t
(** Seeded generator. *)

val int64 : t -> int64
val bits53 : t -> int
(** Uniform in [0, 2^53). *)

val int : t -> int -> int
(** Uniform in [0, bound); bound must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val q_unit : t -> Q.t
(** Uniform dyadic rational in [0, 1) with denominator 2^53. *)

val q_in : t -> Q.t -> Q.t -> Q.t
(** Uniform dyadic-grid rational in [lo, hi). *)

val split : t -> t
(** An independent generator derived from this one. *)
