(** Sampling-based approximate volume: the executable content of Lemma 1 and
    Theorem 4.  An epsilon-approximation of [vol (S intersect I^n)] is the
    fraction of a sample falling in [S]; the sample size comes from the
    BEHW bound and the family's VC dimension, so one shared sample is good
    for all parameter values simultaneously with probability [1 - delta]. *)

open Cqa_arith

type sample = Q.t array list

val random_sample : prng:Prng.t -> dim:int -> n:int -> sample
(** Uniform dyadic-rational points in the unit cube. *)

val halton_sample : dim:int -> n:int -> sample
(** Deterministic low-discrepancy sample (the derandomized stand-in). *)

val fraction_in : sample -> (Q.t array -> bool) -> Q.t
(** Fraction of the sample inside the set; exact rational. *)

val estimate :
  sample:sample -> mem:(Q.t array -> bool) -> Q.t
(** Volume estimate for one set: [fraction_in]. *)

val sample_size : eps:float -> delta:float -> vc_dim:int -> int
(** The BEHW [M] (re-exported from {!Bounds}). *)

val estimate_family :
  sample:sample -> mem:('a -> Q.t array -> bool) -> 'a list -> ('a * Q.t) list
(** One shared sample scored against every parameter: the Theorem 4
    uniform-over-parameters shape. *)

val estimate_random :
  ?domains:int ->
  prng:Prng.t ->
  dim:int ->
  n:int ->
  (Q.t array -> bool) ->
  Q.t
(** Fraction of [n] uniform unit-cube points inside the set, generating and
    scoring the sample in [domains] parallel chunks (default [1] = the
    sequential path, identical to [fraction_in (random_sample ...)]).
    Chunk generators are split deterministically from [prng], so the result
    is reproducible for a fixed seed and domain count.  The membership
    oracle must be safe to call from several domains. *)

val estimate_halton :
  ?domains:int -> dim:int -> n:int -> (Q.t array -> bool) -> Q.t
(** Deterministic low-discrepancy estimate over Halton indices [1..n],
    partitioned into contiguous blocks: the result is the same exact
    rational for every domain count. *)

val estimate_family_random :
  ?domains:int ->
  prng:Prng.t ->
  dim:int ->
  n:int ->
  mem:('a -> Q.t array -> bool) ->
  'a list ->
  ('a * Q.t) list
(** [estimate_family] over a freshly drawn sample of [n] points, scored
    against every parameter, chunk-parallel across [domains]. *)

(** {1 Retained samples}

    For incremental re-scoring under database updates: draw the sample
    once, keep the points and a membership bitmap, and after an update
    re-test only the points the delta's bounding box touches. *)

val sample_points :
  ?domains:int -> prng:Prng.t -> dim:int -> int -> Q.t array array
(** [sample_points ~prng ~dim n]: exactly the points {!estimate_random}
    draws for the same [prng], [n] and [domains] (chunk PRNGs split in
    chunk order, points in chunk order), so a retained sample reproduces
    the one-shot estimate bit-for-bit. *)

val score_sample : (Q.t array -> bool) -> Q.t array array -> Bytes.t
(** Membership bitmap of the points ([\001] = inside); ticks the same
    test/acceptance counters as a one-shot estimate. *)

val fraction_of_bits : Bytes.t -> Q.t
(** Hits over sample size: the estimate the bitmap encodes. *)
