(** Sampling-based approximate volume: the executable content of Lemma 1 and
    Theorem 4.  An epsilon-approximation of [vol (S intersect I^n)] is the
    fraction of a sample falling in [S]; the sample size comes from the
    BEHW bound and the family's VC dimension, so one shared sample is good
    for all parameter values simultaneously with probability [1 - delta]. *)

open Cqa_arith

type sample = Q.t array list

val random_sample : prng:Prng.t -> dim:int -> n:int -> sample
(** Uniform dyadic-rational points in the unit cube. *)

val halton_sample : dim:int -> n:int -> sample
(** Deterministic low-discrepancy sample (the derandomized stand-in). *)

val fraction_in : sample -> (Q.t array -> bool) -> Q.t
(** Fraction of the sample inside the set; exact rational. *)

val estimate :
  sample:sample -> mem:(Q.t array -> bool) -> Q.t
(** Volume estimate for one set: [fraction_in]. *)

val sample_size : eps:float -> delta:float -> vc_dim:int -> int
(** The BEHW [M] (re-exported from {!Bounds}). *)

val estimate_family :
  sample:sample -> mem:('a -> Q.t array -> bool) -> 'a list -> ('a * Q.t) list
(** One shared sample scored against every parameter: the Theorem 4
    uniform-over-parameters shape. *)
