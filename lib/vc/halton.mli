(** Halton low-discrepancy sequences with exact rational coordinates: the
    library's executable stand-in for the derandomized sample of
    Karpinski-Macintyre/Koiran (see DESIGN.md).  A fixed low-discrepancy
    point set plays the role their covering/translate argument plays in the
    first-order construction. *)

open Cqa_arith

val radical_inverse : base:int -> int -> Q.t
(** van der Corput radical inverse of the index in the given base, in
    [0, 1). *)

val point : dim:int -> int -> Q.t array
(** [point ~dim i]: the [i]-th Halton point in [0,1)^dim (bases are the
    first [dim] primes).  @raise Invalid_argument for [dim] beyond the
    25 supplied primes. *)

val points : dim:int -> int -> Q.t array list
(** The first [n] points, indices 1..n. *)
