(** Finite set systems and exact VC dimension.

    The Vapnik-Chervonenkis dimension of definable families drives both the
    positive (Theorem 4 sample bounds) and the cautionary (Proposition 5
    growth, Section 3 blow-up) results of the paper.  On finite ground sets
    the dimension is computed exactly by subset search with a
    Sauer-Shelah-style pruning. *)

type t

val create : ground_size:int -> bool array list -> t
(** Each set is a characteristic vector over the ground set [0 ..
    ground_size - 1].  Duplicate sets are collapsed.
    @raise Invalid_argument on vectors of the wrong length. *)

val of_mem : ground_size:int -> set_count:int -> (int -> int -> bool) -> t
(** [of_mem ~ground_size ~set_count mem]: set [j] contains point [i] iff
    [mem j i]. *)

val ground_size : t -> int
val set_count : t -> int
(** Distinct sets. *)

val shatters : t -> int list -> bool
(** Does the system realize all [2^k] traces on the given points? *)

val vc_dimension : t -> int
(** Exact VC dimension (exhaustive search over candidate shattered sets,
    pruned by the [log2 set_count] upper bound). *)

val shattered_witness : t -> int -> int list option
(** Some shattered set of the given size, if one exists. *)
