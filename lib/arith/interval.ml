type t = { lo : Q.t; hi : Q.t }

let make lo hi =
  if Q.gt lo hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x = { lo = x; hi = x }
let lo i = i.lo
let hi i = i.hi
let width i = Q.sub i.hi i.lo
let mid i = Q.mid i.lo i.hi
let contains i x = Q.leq i.lo x && Q.leq x i.hi
let is_point i = Q.equal i.lo i.hi

let intersect a b =
  let lo = Q.max a.lo b.lo and hi = Q.min a.hi b.hi in
  if Q.leq lo hi then Some { lo; hi } else None

let overlaps a b = intersect a b <> None
let hull a b = { lo = Q.min a.lo b.lo; hi = Q.max a.hi b.hi }

let bisect i =
  let m = mid i in
  ({ lo = i.lo; hi = m }, { lo = m; hi = i.hi })

let translate i c = { lo = Q.add i.lo c; hi = Q.add i.hi c }

let scale i c =
  if Q.sign c < 0 then invalid_arg "Interval.scale: negative factor";
  { lo = Q.mul i.lo c; hi = Q.mul i.hi c }

(* The library's single rounding mode is outward: whenever an endpoint must
   move, the lower endpoint only ever moves down and the upper endpoint
   only ever moves up, so the rounded interval always encloses the exact
   one.  Both sides use the same grid, which keeps the lower/upper
   treatment symmetric — the analyzer's range pass relies on the same
   convention (closed over-approximating enclosures). *)
let round_out ~den i =
  if den <= 0 then invalid_arg "Interval.round_out: den <= 0";
  let d = Q.of_int den in
  {
    lo = Q.make (Q.floor (Q.mul i.lo d)) (Bigint.of_int den);
    hi = Q.make (Q.ceil (Q.mul i.hi d)) (Bigint.of_int den);
  }

let grow i eps =
  if Q.sign eps < 0 then invalid_arg "Interval.grow: negative margin";
  { lo = Q.sub i.lo eps; hi = Q.add i.hi eps }

let equal a b = Q.equal a.lo b.lo && Q.equal a.hi b.hi

let pp fmt i = Format.fprintf fmt "[%a, %a]" Q.pp i.lo Q.pp i.hi
