(** Outward-rounded double-precision enclosures of exact rationals: the
    scalar layer of the float-filtered kernel.

    A value [{lo; hi}] encloses the exact rational it stands for:
    [lo <= v <= hi], with IEEE doubles as endpoints (infinities allowed,
    never NaN).  All operations preserve the enclosure, so comparisons
    decided from non-overlapping intervals agree with exact arithmetic;
    overlapping intervals answer {!Unknown} and the caller falls back to
    the exact rational path.  Directed rounding detects exactness (TwoSum
    error terms for sums, 53-bit integer products) instead of widening
    unconditionally, so the integer-coefficient rows produced by
    {!Linconstr} stay width-zero through Fourier-Motzkin combination and
    boundary cases are decided, not punted. *)

type t = private { lo : float; hi : float }

val top : t
val zero : t

val point : float -> t
(** The width-zero enclosure of an exactly-represented value. *)

val is_point : t -> bool

(** {1 Directed scalar primitives}

    Raw-float helpers used by the flat-row kernel on unboxed arrays.
    [add_down a b <= a + b <= add_up a b] and likewise for [mul_*], for
    the {e exact} sum/product of the float operands; results are never
    NaN (unbounded directions degrade to the matching infinity). *)

val next_up : float -> float
val next_down : float -> float
val add_down : float -> float -> float
val add_up : float -> float -> float
val mul_down : float -> float -> float
val mul_up : float -> float -> float

val mul_lo4 : float -> float -> float -> float -> float
(** [mul_lo4 xlo xhi ylo yhi] is a lower bound of [x * y] for any
    [x] in [[xlo, xhi]] and [y] in [[ylo, yhi]]. *)

val mul_hi4 : float -> float -> float -> float -> float

(** {1 Interval operations} *)

val neg : t -> t
val add : t -> t -> t
val mul : t -> t -> t

val combine : t -> t -> t -> t -> t
(** [combine a x b y] encloses [a*x + b*y] — the Fourier-Motzkin pair
    combination step. *)

(** {1 Comparisons} *)

type cmp =
  | Sure_lt  (** every value of the left is < every value of the right *)
  | Sure_ge  (** every value of the left is >= every value of the right *)
  | Unknown  (** the enclosures overlap: fall back to exact arithmetic *)

val cmp : t -> t -> cmp
val cmp0 : t -> cmp

val compare_opt : t -> t -> int option
(** Three-way comparison when the enclosures decide it: [Some 0] only for
    equal width-zero points, [None] whenever exact arithmetic is needed. *)

(** {1 Conversions} *)

val of_q : Q.t -> t
(** Verified tight enclosure: endpoints are checked against the exact
    rational via {!Q.of_float_dyadic} round-trips.  Exact integers below
    2{^53} become width-zero points.  Meant for cached, per-constraint
    conversions. *)

val of_q_fast : Q.t -> t
(** Cheap enclosure with a relative 2{^-40} outward margin around
    {!Q.to_float} (whose relative error is far smaller); no Bigint
    round-trips beyond the conversion itself.  Meant for per-iteration
    use in the simplex ratio filter. *)

val pp : Format.formatter -> t -> unit
