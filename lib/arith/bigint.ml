(* Sign-magnitude arbitrary-precision integers over base-2^30 limbs.

   Invariants: [mag] is little-endian with no leading zero limb; [sign] is 0
   iff [mag] is empty.  All limb values lie in [0, base).  Limb products fit
   a 63-bit native int: (2^30-1)^2 + 2*2^30 < 2^62. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let t = top (n - 1) in
  if t < 0 then zero
  else if t = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (t + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int negation is safe: abs through successive shifting of the
       negative value would be needed only for min_int; handle via landing in
       three limbs using logical shifts on the negative number. *)
    if n = min_int then
      (* |min_int| = 2^62 = bit 2 of limb 2 with 30-bit limbs *)
      { sign; mag = [| 0; 0; 1 lsl (62 - (2 * base_bits)) |] }
    else begin
      let m = abs n in
      if m < base then { sign; mag = [| m |] }
      else if m < base * base then
        { sign; mag = [| m land base_mask; m lsr base_bits |] }
      else
        { sign;
          mag =
            [| m land base_mask;
               (m lsr base_bits) land base_mask;
               m lsr (2 * base_bits) |] }
    end
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0
let is_one x = x.sign = 1 && Array.length x.mag = 1 && x.mag.(0) = 1

let numbits x =
  let n = Array.length x.mag in
  if n = 0 then 0
  else begin
    let top = x.mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0
  end

let to_int_opt x =
  if numbits x <= 62 then begin
    let acc = ref 0 in
    for i = Array.length x.mag - 1 downto 0 do
      acc := (!acc lsl base_bits) lor x.mag.(i)
    done;
    Some (if x.sign < 0 then - !acc else !acc)
  end
  else if
    (* min_int's magnitude 2^62 needs 63 bits but still fits *)
    x.sign < 0 && numbits x = 63
    && Array.for_all (fun l -> l = 0) (Array.sub x.mag 0 (Array.length x.mag - 1))
    && x.mag.(Array.length x.mag - 1) = 1 lsl (62 - ((Array.length x.mag - 1) * base_bits))
  then Some min_int
  else None

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> invalid_arg "Bigint.to_int_exn: does not fit"

(* magnitude comparison *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let a, b, la, lb = if la >= lb then (a, b, la, lb) else (b, a, lb, la) in
  let r = Array.make (la + 1) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(la) <- !carry;
  r

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let rec add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> normalize x.sign (sub_mag x.mag y.mag)
    | _ -> normalize y.sign (sub_mag y.mag x.mag)
  end

and sub x y = add x (neg y)

let succ x = add x one
let pred x = sub x one

let mul_mag_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    if ai <> 0 then begin
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land base_mask;
        carry := cur lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land base_mask;
        carry := cur lsr base_bits;
        incr k
      done
    end
  done;
  r

let karatsuba_threshold = 32

(* slices for karatsuba *)
let mag_slice a lo len =
  let la = Array.length a in
  if lo >= la then [||]
  else Array.sub a lo (Stdlib.min len (la - lo))

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if Stdlib.min la lb < karatsuba_threshold then mul_mag_schoolbook a b
  else begin
    let m = (Stdlib.max la lb + 1) / 2 in
    let a0 = mag_slice a 0 m and a1 = mag_slice a m max_int in
    let b0 = mag_slice b 0 m and b1 = mag_slice b m max_int in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let sa = add_mag a0 a1 and sb = add_mag b0 b1 in
    let z1 = mul_mag sa sb in
    (* z1 - z0 - z2, all as magnitudes; z1 >= z0 + z2 always *)
    let z1 = sub_mag z1 z0 in
    let z1 = sub_mag z1 z2 in
    let len = la + lb in
    let r = Array.make (len + 1) 0 in
    let add_into src off =
      let carry = ref 0 in
      for i = 0 to Array.length src - 1 do
        let cur = r.(off + i) + src.(i) + !carry in
        r.(off + i) <- cur land base_mask;
        carry := cur lsr base_bits
      done;
      let k = ref (off + Array.length src) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land base_mask;
        carry := cur lsr base_bits;
        incr k
      done
    in
    add_into z0 0;
    add_into z1 m;
    add_into z2 (2 * m);
    r
  end

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else normalize (x.sign * y.sign) (mul_mag x.mag y.mag)

(* magnitude shifts *)
let shift_left_mag a k =
  if Array.length a = 0 || k = 0 then Array.copy a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 r limb_shift la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- v land base_mask;
        carry := v lsr base_bits
      done;
      r.(la + limb_shift) <- !carry
    end;
    r
  end

let shift_right_mag a k =
  let limb_shift = k / base_bits and bit_shift = k mod base_bits in
  let la = Array.length a in
  if limb_shift >= la then [||]
  else begin
    let lr = la - limb_shift in
    let r = Array.make lr 0 in
    if bit_shift = 0 then Array.blit a limb_shift r 0 lr
    else
      for i = 0 to lr - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if i + limb_shift + 1 < la then
            (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land base_mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
    r
  end

let shift_left x k =
  if k < 0 then invalid_arg "Bigint.shift_left"
  else if x.sign = 0 then zero
  else normalize x.sign (shift_left_mag x.mag k)

let shift_right x k =
  if k < 0 then invalid_arg "Bigint.shift_right"
  else if x.sign = 0 then zero
  else normalize x.sign (shift_right_mag x.mag k)

(* Knuth algorithm D on magnitudes; returns (quotient, remainder). *)
let divmod_mag u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if cmp_mag u v < 0 then ([||], Array.copy u)
  else if lv = 1 then begin
    (* single-limb divisor: simple long division *)
    let d = v.(0) in
    let lu = Array.length u in
    let q = Array.make lu 0 in
    let rem = ref 0 in
    for i = lu - 1 downto 0 do
      let cur = (!rem lsl base_bits) lor u.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (q, if !rem = 0 then [||] else [| !rem |])
  end
  else begin
    (* normalize: shift so that top limb of v >= base/2 *)
    let rec lead_bits x acc = if x = 0 then acc else lead_bits (x lsr 1) (acc + 1) in
    let shift = base_bits - lead_bits v.(lv - 1) 0 in
    let vn = shift_left_mag v shift in
    let vn = Array.sub vn 0 lv in
    let un = shift_left_mag u shift in
    (* ensure un has length lu+1 after shift *)
    let lu = Array.length u in
    let un =
      if Array.length un = lu + 1 then un
      else begin
        let r = Array.make (lu + 1) 0 in
        Array.blit un 0 r 0 (Array.length un);
        r
      end
    in
    let n = lv and m = lu - lv in
    let q = Array.make (m + 1) 0 in
    let v1 = vn.(n - 1) and v2 = vn.(n - 2) in
    for j = m downto 0 do
      let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
      let qhat = ref (top / v1) and rhat = ref (top mod v1) in
      let continue = ref true in
      while
        !continue
        && (!qhat >= base
            || !qhat * v2 > (!rhat lsl base_bits) lor un.(j + n - 2))
      do
        decr qhat;
        rhat := !rhat + v1;
        if !rhat >= base then continue := false
      done;
      (* multiply and subtract *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr base_bits;
        let t = un.(i + j) - (p land base_mask) - !borrow in
        if t < 0 then begin
          un.(i + j) <- t + base;
          borrow := 1
        end
        else begin
          un.(i + j) <- t;
          borrow := 0
        end
      done;
      let t = un.(j + n) - !carry - !borrow in
      if t < 0 then begin
        (* qhat was one too large: add back *)
        un.(j + n) <- t + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s = un.(i + j) + vn.(i) + !carry2 in
          un.(i + j) <- s land base_mask;
          carry2 := s lsr base_bits
        done;
        un.(j + n) <- (un.(j + n) + !carry2) land base_mask
      end
      else un.(j + n) <- t;
      q.(j) <- !qhat
    done;
    let r = shift_right_mag (Array.sub un 0 n) shift in
    (q, r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else abs (mul (div a (gcd a b)) b)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (k lsr 1)
    end
  in
  go one x k

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash x =
  Array.fold_left (fun acc l -> (acc * 1000003) lxor l) (x.sign + 7) x.mag

let to_float x =
  let n = Array.length x.mag in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    let lo = Stdlib.max 0 (n - 4) in
    for i = n - 1 downto lo do
      acc := (!acc *. float_of_int base) +. float_of_int x.mag.(i)
    done;
    let f = ldexp !acc (lo * base_bits) in
    if x.sign < 0 then -.f else f
  end

let chunk_base = 1_000_000_000 (* 10^9 < 2^30 *)

(* multiply by small int (< base) and add small int, in place of chains *)
let mul_add_small x m a =
  if x.sign = 0 then of_int a
  else begin
    let la = Array.length x.mag in
    let r = Array.make (la + 2) 0 in
    let carry = ref a in
    for i = 0 to la - 1 do
      let cur = (x.mag.(i) * m) + !carry in
      r.(i) <- cur land base_mask;
      carry := cur lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land base_mask;
      carry := !carry lsr base_bits;
      incr k
    done;
    normalize 1 r
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let neg_sign, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < n do
    let stop = Stdlib.min n (!i + 9) in
    let chunk_len = stop - !i in
    let chunk = ref 0 in
    for j = !i to stop - 1 do
      match s.[j] with
      | '0' .. '9' -> chunk := (!chunk * 10) + (Char.code s.[j] - Char.code '0')
      | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad char %c" c)
    done;
    let scale =
      let rec p10 k = if k = 0 then 1 else 10 * p10 (k - 1) in
      p10 chunk_len
    in
    acc := mul_add_small !acc scale !chunk;
    i := stop
  done;
  if neg_sign then neg !acc else !acc

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let chunks = ref [] in
    let cur = ref (abs x) in
    let small_div = of_int chunk_base in
    while not (is_zero !cur) do
      let q, r = divmod !cur small_div in
      chunks := (match to_int_opt r with Some v -> v | None -> assert false) :: !chunks;
      cur := q
    done;
    (match !chunks with
    | [] -> assert false
    | first :: rest ->
        if x.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)
