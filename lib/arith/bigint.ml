(* Two-tier exact integers, zarith-style: a native-int fast tier [Small] and
   a sign-magnitude base-2^30 limb tier [Big].

   Canonical-form invariant: every value representable as a native [int] is
   [Small]; [Big] is reserved for values outside [min_int, max_int].  All
   public operations re-establish the invariant (promotion on overflow,
   demotion after limb-tier computation), so each integer has exactly one
   representation and [compare]/[equal]/[hash] may dispatch on the
   constructor.

   Limb invariants ([Big]): [mag] is little-endian with no leading zero
   limb; [sign] is never 0 (zero is [Small 0]).  All limb values lie in
   [0, base).  Limb products fit a 63-bit native int:
   (2^30-1)^2 + 2*2^30 < 2^62. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type big = { sign : int; mag : int array }
type t = Small of int | Big of big

(* ------------------------------------------------------------------ *)
(* Magnitude primitives (limb tier)                                    *)
(* ------------------------------------------------------------------ *)

(* magnitude comparison; both arguments trimmed *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

(* strip leading zero limbs *)
let trim_mag a =
  let n = Array.length a in
  let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
  let t = top (n - 1) in
  if t = n - 1 then a else Array.sub a 0 (t + 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let a, b, la, lb = if la >= lb then (a, b, la, lb) else (b, a, lb, la) in
  let r = Array.make (la + 1) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(la) <- !carry;
  r

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let mul_mag_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    if ai <> 0 then begin
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land base_mask;
        carry := cur lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land base_mask;
        carry := cur lsr base_bits;
        incr k
      done
    end
  done;
  r

let karatsuba_threshold = 32

(* slices for karatsuba *)
let mag_slice a lo len =
  let la = Array.length a in
  if lo >= la then [||]
  else Array.sub a lo (Stdlib.min len (la - lo))

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if Stdlib.min la lb < karatsuba_threshold then mul_mag_schoolbook a b
  else begin
    let m = (Stdlib.max la lb + 1) / 2 in
    let a0 = mag_slice a 0 m and a1 = mag_slice a m max_int in
    let b0 = mag_slice b 0 m and b1 = mag_slice b m max_int in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let sa = add_mag a0 a1 and sb = add_mag b0 b1 in
    let z1 = mul_mag sa sb in
    (* z1 - z0 - z2, all as magnitudes; z1 >= z0 + z2 always *)
    let z1 = sub_mag z1 z0 in
    let z1 = sub_mag z1 z2 in
    let len = la + lb in
    let r = Array.make (len + 1) 0 in
    let add_into src off =
      let carry = ref 0 in
      for i = 0 to Array.length src - 1 do
        let cur = r.(off + i) + src.(i) + !carry in
        r.(off + i) <- cur land base_mask;
        carry := cur lsr base_bits
      done;
      let k = ref (off + Array.length src) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land base_mask;
        carry := cur lsr base_bits;
        incr k
      done
    in
    add_into z0 0;
    add_into z1 m;
    add_into z2 (2 * m);
    r
  end

(* magnitude shifts *)
let shift_left_mag a k =
  if Array.length a = 0 || k = 0 then Array.copy a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 r limb_shift la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- v land base_mask;
        carry := v lsr base_bits
      done;
      r.(la + limb_shift) <- !carry
    end;
    r
  end

let shift_right_mag a k =
  let limb_shift = k / base_bits and bit_shift = k mod base_bits in
  let la = Array.length a in
  if limb_shift >= la then [||]
  else begin
    let lr = la - limb_shift in
    let r = Array.make lr 0 in
    if bit_shift = 0 then Array.blit a limb_shift r 0 lr
    else
      for i = 0 to lr - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if i + limb_shift + 1 < la then
            (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land base_mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
    r
  end

(* Knuth algorithm D on magnitudes; returns (quotient, remainder). *)
let divmod_mag u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if cmp_mag u v < 0 then ([||], Array.copy u)
  else if lv = 1 then begin
    (* single-limb divisor: simple long division *)
    let d = v.(0) in
    let lu = Array.length u in
    let q = Array.make lu 0 in
    let rem = ref 0 in
    for i = lu - 1 downto 0 do
      let cur = (!rem lsl base_bits) lor u.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (q, if !rem = 0 then [||] else [| !rem |])
  end
  else begin
    (* normalize: shift so that top limb of v >= base/2 *)
    let rec lead_bits x acc = if x = 0 then acc else lead_bits (x lsr 1) (acc + 1) in
    let shift = base_bits - lead_bits v.(lv - 1) 0 in
    let vn = shift_left_mag v shift in
    let vn = Array.sub vn 0 lv in
    let un = shift_left_mag u shift in
    (* ensure un has length lu+1 after shift *)
    let lu = Array.length u in
    let un =
      if Array.length un = lu + 1 then un
      else begin
        let r = Array.make (lu + 1) 0 in
        Array.blit un 0 r 0 (Array.length un);
        r
      end
    in
    let n = lv and m = lu - lv in
    let q = Array.make (m + 1) 0 in
    let v1 = vn.(n - 1) and v2 = vn.(n - 2) in
    for j = m downto 0 do
      let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
      let qhat = ref (top / v1) and rhat = ref (top mod v1) in
      let continue = ref true in
      while
        !continue
        && (!qhat >= base
            || !qhat * v2 > (!rhat lsl base_bits) lor un.(j + n - 2))
      do
        decr qhat;
        rhat := !rhat + v1;
        if !rhat >= base then continue := false
      done;
      (* multiply and subtract *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr base_bits;
        let t = un.(i + j) - (p land base_mask) - !borrow in
        if t < 0 then begin
          un.(i + j) <- t + base;
          borrow := 1
        end
        else begin
          un.(i + j) <- t;
          borrow := 0
        end
      done;
      let t = un.(j + n) - !carry - !borrow in
      if t < 0 then begin
        (* qhat was one too large: add back *)
        un.(j + n) <- t + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s = un.(i + j) + vn.(i) + !carry2 in
          un.(i + j) <- s land base_mask;
          carry2 := s lsr base_bits
        done;
        un.(j + n) <- (un.(j + n) + !carry2) land base_mask
      end
      else un.(j + n) <- t;
      q.(j) <- !qhat
    done;
    let r = shift_right_mag (Array.sub un 0 n) shift in
    (q, r)
  end

(* ------------------------------------------------------------------ *)
(* Tier conversion                                                     *)
(* ------------------------------------------------------------------ *)

let big_zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let mag = trim_mag mag in
  if Array.length mag = 0 then big_zero else { sign; mag }

let big_of_int n =
  if n = 0 then big_zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    if n = min_int then
      (* |min_int| = 2^62 = bit 2 of limb 2 with 30-bit limbs *)
      { sign; mag = [| 0; 0; 1 lsl (62 - (2 * base_bits)) |] }
    else begin
      let m = abs n in
      if m < base then { sign; mag = [| m |] }
      else if m < base * base then
        { sign; mag = [| m land base_mask; m lsr base_bits |] }
      else
        { sign;
          mag =
            [| m land base_mask;
               (m lsr base_bits) land base_mask;
               m lsr (2 * base_bits) |] }
    end
  end

let mag_numbits mag =
  let n = Array.length mag in
  if n = 0 then 0
  else begin
    let top = mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0
  end

(* value of a trimmed magnitude that fits in 62 bits *)
let mag_to_int mag =
  let acc = ref 0 in
  for i = Array.length mag - 1 downto 0 do
    acc := (!acc lsl base_bits) lor mag.(i)
  done;
  !acc

let big_to_int_opt (b : big) : int option =
  let nb = mag_numbits b.mag in
  if nb <= 62 then Some (if b.sign < 0 then -mag_to_int b.mag else mag_to_int b.mag)
  else if
    (* min_int's magnitude 2^62 needs 63 bits but still fits *)
    b.sign < 0 && nb = 63
    && b.mag.(Array.length b.mag - 1)
       = 1 lsl (62 - ((Array.length b.mag - 1) * base_bits))
    && Array.for_all (fun l -> l = 0) (Array.sub b.mag 0 (Array.length b.mag - 1))
  then Some min_int
  else None

(* demote to the canonical representation *)
let big_to_t (b : big) : t =
  match big_to_int_opt b with Some n -> Small n | None -> Big b

let to_big = function Small n -> big_of_int n | Big b -> b

(* ------------------------------------------------------------------ *)
(* Constructors and accessors                                          *)
(* ------------------------------------------------------------------ *)

let zero = Small 0
let one = Small 1
let two = Small 2
let minus_one = Small (-1)
let of_int n = Small n

let to_int_opt = function Small n -> Some n | Big _ -> None

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> invalid_arg "Bigint.to_int_exn: does not fit"

let sign = function
  | Small n -> Stdlib.compare n 0
  | Big b -> b.sign

let is_zero = function Small 0 -> true | _ -> false
let is_one = function Small 1 -> true | _ -> false

let int_numbits n =
  (* bits of |n| *)
  if n = 0 then 0
  else if n = min_int then 63
  else begin
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    bits (abs n) 0
  end

let numbits = function
  | Small n -> int_numbits n
  | Big b -> mag_numbits b.mag

let big_neg (b : big) : big = if b.sign = 0 then b else { b with sign = -b.sign }

let neg = function
  | Small n ->
      if n = min_int then Big { sign = 1; mag = (big_of_int min_int).mag }
      else Small (-n)
  | Big b -> big_to_t (big_neg b)

let abs x = match x with
  | Small n -> if n >= 0 then x else neg x
  | Big b -> if b.sign >= 0 then x else big_to_t { b with sign = 1 }

(* ------------------------------------------------------------------ *)
(* Ring operations                                                     *)
(* ------------------------------------------------------------------ *)

let big_add (x : big) (y : big) : big =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> big_zero
    | c when c > 0 -> normalize x.sign (sub_mag x.mag y.mag)
    | _ -> normalize y.sign (sub_mag y.mag x.mag)
  end

let add x y =
  match (x, y) with
  | Small a, Small b ->
      let s = a + b in
      (* overflow iff operands share a sign the sum does not *)
      if (a lxor s) land (b lxor s) >= 0 then Small s
      else big_to_t (big_add (big_of_int a) (big_of_int b))
  | _ -> big_to_t (big_add (to_big x) (to_big y))

let sub x y =
  match (x, y) with
  | Small a, Small b ->
      let s = a - b in
      if (a lxor b) land (a lxor s) >= 0 then Small s
      else big_to_t (big_add (big_of_int a) (big_neg (big_of_int b)))
  | _ -> big_to_t (big_add (to_big x) (big_neg (to_big y)))

let succ x = add x one
let pred x = sub x one

let mul x y =
  match (x, y) with
  | Small 0, _ | _, Small 0 -> Small 0
  | Small a, Small b when a <> min_int && b <> min_int ->
      (* |a|,|b| < 2^31 cannot overflow; otherwise validate by division *)
      let p = a * b in
      if (Stdlib.abs a < 1 lsl 31 && Stdlib.abs b < 1 lsl 31) || p / b = a then
        Small p
      else
        big_to_t
          (normalize
             (Stdlib.compare a 0 * Stdlib.compare b 0)
             (mul_mag (big_of_int a).mag (big_of_int b).mag))
  | _ ->
      let xb = to_big x and yb = to_big y in
      if xb.sign = 0 || yb.sign = 0 then Small 0
      else big_to_t (normalize (xb.sign * yb.sign) (mul_mag xb.mag yb.mag))

(* ------------------------------------------------------------------ *)
(* Shifts                                                              *)
(* ------------------------------------------------------------------ *)

let shift_left x k =
  if k < 0 then invalid_arg "Bigint.shift_left";
  match x with
  | Small 0 -> Small 0
  | Small n when n <> min_int && int_numbits n + k <= 62 -> Small (n lsl k)
  | _ ->
      let b = to_big x in
      big_to_t (normalize b.sign (shift_left_mag b.mag k))

(* truncates the magnitude toward zero, matching the limb-tier semantics
   (not an arithmetic shift on negatives) *)
let shift_right x k =
  if k < 0 then invalid_arg "Bigint.shift_right";
  match x with
  | Small n when n >= 0 -> Small (if k >= 62 then 0 else n lsr k)
  | Small n when n <> min_int -> Small (if k >= 62 then 0 else -(-n lsr k))
  | _ ->
      let b = to_big x in
      big_to_t (normalize b.sign (shift_right_mag b.mag k))

(* ------------------------------------------------------------------ *)
(* Division                                                            *)
(* ------------------------------------------------------------------ *)

let divmod a b =
  match (a, b) with
  | _, Small 0 -> raise Division_by_zero
  | Small 0, _ -> (zero, zero)
  | Small x, Small y ->
      if x = min_int && y = -1 then (neg a, zero)
      else (Small (x / y), Small (x mod y))
  | Small _, Big _ ->
      (* canonical: |a| <= max_int < |b|, so the quotient is 0 *)
      (zero, a)
  | _ ->
      let ab = to_big a and bb = to_big b in
      let qm, rm = divmod_mag ab.mag bb.mag in
      let q = normalize (ab.sign * bb.sign) qm in
      let r = normalize ab.sign rm in
      (big_to_t q, big_to_t r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv a b =
  let q, r = divmod a b in
  if sign r >= 0 then (q, r)
  else if sign b > 0 then (pred q, add r b)
  else (succ q, sub r b)

(* ------------------------------------------------------------------ *)
(* GCD (binary)                                                        *)
(* ------------------------------------------------------------------ *)

let int_ctz n =
  (* trailing zero bits; n > 0 *)
  let rec go n acc = if n land 1 = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* binary (Stein) gcd on non-negative natives: no division, no allocation *)
let int_gcd a b =
  if a = 0 then b
  else if b = 0 then a
  else begin
    let za = int_ctz a and zb = int_ctz b in
    let k = Stdlib.min za zb in
    let a = ref (a lsr za) and b = ref (b lsr zb) in
    while !a <> !b do
      if !a > !b then begin
        let d = !a - !b in
        a := d lsr int_ctz d
      end
      else begin
        let d = !b - !a in
        b := d lsr int_ctz d
      end
    done;
    !a lsl k
  end

(* GCD on magnitudes: quotient-based (Euclid) reduction while either
   operand is wider than a native int — each divmod step shrinks the pair
   geometrically, which subtraction alone would not — then the native-int
   Stein gcd for the (common) small tail. *)
let gcd_mag a b =
  let a = ref (trim_mag a) and b = ref (trim_mag b) in
  if cmp_mag !a !b < 0 then begin
    let t = !a in
    a := !b;
    b := t
  end;
  (* invariant: a >= b *)
  while Array.length !b > 0 && mag_numbits !a > 62 do
    let r = trim_mag (snd (divmod_mag !a !b)) in
    a := !b;
    b := r
  done;
  if Array.length !b = 0 then !a
  else (big_of_int (int_gcd (mag_to_int !a) (mag_to_int !b))).mag

let gcd x y =
  match (x, y) with
  | Small 0, _ -> abs y
  | _, Small 0 -> abs x
  | Small a, Small b when a <> min_int && b <> min_int ->
      Small (int_gcd (Stdlib.abs a) (Stdlib.abs b))
  | _ -> big_to_t (normalize 1 (gcd_mag (to_big x).mag (to_big y).mag))

let lcm a b =
  if is_zero a || is_zero b then zero
  else abs (mul (div a (gcd a b)) b)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (k lsr 1)
    end
  in
  go one x k

(* ------------------------------------------------------------------ *)
(* Comparison, hashing, conversions                                    *)
(* ------------------------------------------------------------------ *)

let compare x y =
  match (x, y) with
  | Small a, Small b -> Stdlib.compare a b
  | Small _, Big b ->
      (* canonical Big values lie outside the native range *)
      if b.sign > 0 then -1 else 1
  | Big a, Small _ -> if a.sign > 0 then 1 else -1
  | Big a, Big b ->
      if a.sign <> b.sign then Stdlib.compare a.sign b.sign
      else if a.sign >= 0 then cmp_mag a.mag b.mag
      else cmp_mag b.mag a.mag

let equal a b =
  match (a, b) with
  | Small x, Small y -> x = y
  | Big x, Big y -> x.sign = y.sign && cmp_mag x.mag y.mag = 0
  | _ -> false

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash = function
  | Small n -> (n * 1000003) lxor 0x5bd1e995
  | Big b ->
      Array.fold_left (fun acc l -> (acc * 1000003) lxor l) (b.sign + 7) b.mag

let to_float = function
  | Small n -> float_of_int n
  | Big b ->
      let n = Array.length b.mag in
      let acc = ref 0.0 in
      let lo = Stdlib.max 0 (n - 4) in
      for i = n - 1 downto lo do
        acc := (!acc *. float_of_int base) +. float_of_int b.mag.(i)
      done;
      let f = ldexp !acc (lo * base_bits) in
      if b.sign < 0 then -.f else f

let chunk_base = 1_000_000_000 (* 10^9 < 2^30 *)

(* multiply a non-negative big by a small int (< base) and add a small int *)
let mul_add_small (x : big) m a : big =
  if x.sign = 0 then big_of_int a
  else begin
    let la = Array.length x.mag in
    let r = Array.make (la + 2) 0 in
    let carry = ref a in
    for i = 0 to la - 1 do
      let cur = (x.mag.(i) * m) + !carry in
      r.(i) <- cur land base_mask;
      carry := cur lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land base_mask;
      carry := !carry lsr base_bits;
      incr k
    done;
    normalize 1 r
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let neg_sign, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  if n - start <= 18 then begin
    (* fast path: fits a native int with room to spare *)
    let acc = ref 0 in
    for j = start to n - 1 do
      match s.[j] with
      | '0' .. '9' -> acc := (!acc * 10) + (Char.code s.[j] - Char.code '0')
      | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad char %c" c)
    done;
    Small (if neg_sign then - !acc else !acc)
  end
  else begin
    let acc = ref big_zero in
    let i = ref start in
    while !i < n do
      let stop = Stdlib.min n (!i + 9) in
      let chunk_len = stop - !i in
      let chunk = ref 0 in
      for j = !i to stop - 1 do
        match s.[j] with
        | '0' .. '9' -> chunk := (!chunk * 10) + (Char.code s.[j] - Char.code '0')
        | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad char %c" c)
      done;
      let scale =
        let rec p10 k = if k = 0 then 1 else 10 * p10 (k - 1) in
        p10 chunk_len
      in
      acc := mul_add_small !acc scale !chunk;
      i := stop
    done;
    let b = if neg_sign then { !acc with sign = - !acc.sign } else !acc in
    big_to_t (if b.sign = 0 then big_zero else b)
  end

let to_string x =
  match x with
  | Small n -> string_of_int n
  | Big b ->
      let buf = Buffer.create 16 in
      let chunks = ref [] in
      let cur = ref b.mag in
      let small_div = [| chunk_base |] in
      while Array.length !cur > 0 do
        let q, r = divmod_mag !cur small_div in
        chunks := (if Array.length r = 0 then 0 else r.(0)) :: !chunks;
        cur := trim_mag q
      done;
      (match !chunks with
      | [] -> assert false
      | first :: rest ->
          if b.sign < 0 then Buffer.add_char buf '-';
          Buffer.add_string buf (string_of_int first);
          List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
      Buffer.contents buf

let pp fmt x = Format.pp_print_string fmt (to_string x)
