(* Outward-rounded double-precision enclosures of exact rationals: the
   scalar layer of the float-filtered kernel (DESIGN.md, "The
   float-filtered numeric kernel").

   An enclosure [{lo; hi}] asserts lo <= v <= hi for the exact value v it
   stands for, where lo and hi are IEEE-754 doubles (infinities allowed,
   never NaN).  Every operation here preserves that invariant, so any
   predicate decided from enclosures alone — a comparison whose intervals
   do not overlap — agrees with the exact rational answer.  Overlapping
   intervals yield [Unknown] and the caller re-runs the exact path: the
   filter is a conservative abstraction, never an approximation.

   Two properties make the filter decisive on this codebase's inputs
   rather than merely sound:

   - {!Linconstr.make} scales every constraint to primitive *integer*
     coefficients, so rows enter the kernel as width-zero (point)
     enclosures whenever the integers fit in 53 bits — the common case
     by far.

   - The directed additions below detect exactness instead of blindly
     nudging one ulp: TwoSum recovers the exact rounding error of a +. b,
     and the bound is widened only when that error is nonzero in the
     unsafe direction.  Likewise a product of integer-valued doubles with
     |a *. b| < 2^53 is provably exact.  Sums and small products of
     integer points therefore stay points, and boundary cases (a combined
     constant that is exactly zero) are decided, not punted. *)

type t = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }
let zero = { lo = 0.0; hi = 0.0 }
let point f = { lo = f; hi = f }
let is_point x = x.lo = x.hi

(* Directed neighbors.  [Float.succ]/[Float.pred] step through subnormals
   and from/to infinities correctly; we only need to pin the infinite
   endpoints (succ infinity = infinity already holds). *)
let next_up f = if f = infinity then infinity else Float.succ f
let next_down f = if f = neg_infinity then neg_infinity else Float.pred f

(* Round-to-nearest gives +infinity only when the exact sum/product
   exceeds max_float (in fact exceeds the midpoint max_float + 2^969), so
   max_float is a sound finite lower bound for an overflowed result, and
   symmetrically for -infinity.  NaN arises only from inf - inf or
   0 * inf on already-infinite (i.e. already-top) inputs; the directed
   result degrades to the unbounded endpoint, keeping enclosures NaN-free. *)

let add_down a b =
  let s = a +. b in
  if s = infinity then max_float
  else if s = neg_infinity then neg_infinity
  else if Float.is_nan s then neg_infinity
  else begin
    (* TwoSum: err is the exact value of (a + b) - s, provided no
       intermediate overflows; |s| is finite here and the correction
       terms are bounded by |a| and |b|, so they cannot overflow unless
       |s| is within one ulp of max_float — nudge unconditionally in that
       regime rather than trust the error term. *)
    if Float.abs s >= 0x1.fp1023 then next_down s
    else
      let b' = s -. a in
      let err = (a -. (s -. b')) +. (b -. b') in
      if err >= 0.0 then s else next_down s
  end

let add_up a b =
  let s = a +. b in
  if s = neg_infinity then -.max_float
  else if s = infinity then infinity
  else if Float.is_nan s then infinity
  else if Float.abs s >= 0x1.fp1023 then next_up s
  else
    let b' = s -. a in
    let err = (a -. (s -. b')) +. (b -. b') in
    if err <= 0.0 then s else next_up s

(* A product of integer-valued doubles whose rounded result lies strictly
   below 2^53 is exact: the true product is an integer, and if it were
   >= 2^53 the rounded result (off by < one ulp = 1 at that magnitude,
   and itself an integer multiple of the ulp) could not come out below
   2^53.  Every representable integer below 2^53 is exact. *)
let exact_mul a b p =
  a = 0.0 || b = 0.0
  || (Float.abs p < 0x1p53 && Float.is_integer a && Float.is_integer b)

let mul_down a b =
  let p = a *. b in
  if p = infinity then max_float
  else if p = neg_infinity then neg_infinity
  else if Float.is_nan p then neg_infinity
  else if exact_mul a b p then p
  else next_down p

let mul_up a b =
  let p = a *. b in
  if p = neg_infinity then -.max_float
  else if p = infinity then infinity
  else if Float.is_nan p then infinity
  else if exact_mul a b p then p
  else next_up p

let neg x = { lo = -.x.hi; hi = -.x.lo }
let add x y = { lo = add_down x.lo y.lo; hi = add_up x.hi y.hi }

(* General interval product: directed min/max over the four endpoint
   products.  The helpers never return NaN, so Float.min/max are safe. *)
let mul_lo4 xlo xhi ylo yhi =
  Float.min
    (Float.min (mul_down xlo ylo) (mul_down xlo yhi))
    (Float.min (mul_down xhi ylo) (mul_down xhi yhi))

let mul_hi4 xlo xhi ylo yhi =
  Float.max
    (Float.max (mul_up xlo ylo) (mul_up xlo yhi))
    (Float.max (mul_up xhi ylo) (mul_up xhi yhi))

let mul x y =
  { lo = mul_lo4 x.lo x.hi y.lo y.hi; hi = mul_hi4 x.lo x.hi y.lo y.hi }

(* combine a b x y encloses a*x + b*y — the FM pair-combination step. *)
let combine a x b y = add (mul a x) (mul b y)

type cmp = Sure_lt | Sure_ge | Unknown

let cmp x y =
  if x.hi < y.lo then Sure_lt else if x.lo >= y.hi then Sure_ge else Unknown

let cmp0 x = if x.hi < 0.0 then Sure_lt else if x.lo >= 0.0 then Sure_ge else Unknown

let compare_opt x y =
  if x.hi < y.lo then Some (-1)
  else if y.hi < x.lo then Some 1
  else if is_point x && is_point y && x.lo = y.lo then Some 0
  else None

(* Exact-point conversion when the rational is an integer that the double
   format represents exactly: Q.to_float rounds, and a rounded |result|
   strictly below 2^53 certifies the integer was representable (integers
   of magnitude >= 2^53 round to >= 2^53). *)
let of_q_point q =
  if Q.is_integer q then begin
    let f = Q.to_float q in
    if Float.abs f < 0x1p53 then Some f else None
  end
  else None

(* Verified enclosure: start from the to_float approximation and walk each
   endpoint outward until Q.of_float_dyadic certifies it bounds q.
   Q.to_float is within a few ulp of the true value (two correctly-rounded
   Bigint conversions and one division), so the walk terminates in a
   handful of steps; it is only used on cached, per-constraint paths. *)
let of_q q =
  match of_q_point q with
  | Some f -> point f
  | None ->
      let f = Q.to_float q in
      if Float.is_nan f then top
      else begin
        let f =
          if f = infinity then max_float
          else if f = neg_infinity then -.max_float
          else f
        in
        let rec down g =
          if g = neg_infinity || Q.leq (Q.of_float_dyadic g) q then g
          else down (next_down g)
        in
        let rec up g =
          if g = infinity || Q.leq q (Q.of_float_dyadic g) then g
          else up (next_up g)
        in
        { lo = down f; hi = up f }
      end

(* Cheap enclosure for per-iteration use (the simplex ratio filter), with
   no Bigint round-trips.  Q.to_float computes to_float(num) /.
   to_float(den); Bigint.to_float truncates below its top four limbs
   (relative error < 2^-180) and float division rounds correctly, so the
   combined relative error is far below 2^-40 — a 2^-40 outward margin is
   a sound enclosure with room to spare.  Zero and non-finite
   approximations get conservative absolute bounds: a quotient rounds to
   0 only when |q| < 2^-1000, and to infinity only when q > 2^1000. *)
let of_q_fast q =
  match of_q_point q with
  | Some f -> point f
  | None ->
      let f = Q.to_float q in
      if Float.is_nan f then top
      else if f = 0.0 then { lo = -0x1p-1000; hi = 0x1p-1000 }
      else if f = infinity then { lo = 0x1p1000; hi = infinity }
      else if f = neg_infinity then { lo = neg_infinity; hi = -0x1p1000 }
      else
        let m = Float.abs f *. 0x1p-40 in
        { lo = next_down (f -. m); hi = next_up (f +. m) }

let pp ppf x = Format.fprintf ppf "[%h, %h]" x.lo x.hi
