(* Normalized rationals: [d] is positive and [gcd (n, d) = 1] always.

   The arithmetic kernels are the Knuth 4.5.1 coprime-operand forms: because
   operands are already in lowest terms, [add]/[sub]/[mul] only GCD the
   small cross factors instead of the full products, and same-denominator /
   integer inputs skip the GCD entirely.  On the two-tier [Bigint] this
   keeps the whole simplex/FM hot path on native ints. *)

type t = { n : Bigint.t; d : Bigint.t }

let make_raw n d = { n; d }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then make_raw Bigint.zero Bigint.one
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then make_raw num den
    else make_raw (Bigint.div num g) (Bigint.div den g)
  end

let zero = make_raw Bigint.zero Bigint.one
let one = make_raw Bigint.one Bigint.one
let two = make_raw Bigint.two Bigint.one
let minus_one = make_raw Bigint.minus_one Bigint.one
let half = make_raw Bigint.one Bigint.two

let of_int n = make_raw (Bigint.of_int n) Bigint.one
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)
let of_bigint n = make_raw n Bigint.one
let num x = x.n
let den x = x.d

let sign x = Bigint.sign x.n
let is_zero x = Bigint.is_zero x.n
let neg x = { x with n = Bigint.neg x.n }

let abs x = if sign x < 0 then neg x else x

let inv x =
  if is_zero x then raise Division_by_zero
  else if Bigint.sign x.n > 0 then make_raw x.d x.n
  else make_raw (Bigint.neg x.d) (Bigint.neg x.n)

(* x.n/x.d + s * y.n/y.d for s = add or sub, both operands nonzero.
   With b = x.d, d = y.d, g = gcd (b, d), b = g b', d = g d':
   the sum is t / (b' d) for t = x.n d' +- y.n b', and gcd (t, b' d') = 1,
   so only the leftover g can still divide t. *)
let addsub big_op x y =
  if Bigint.equal x.d y.d then begin
    let n = big_op x.n y.n in
    if Bigint.is_zero n then zero
    else if Bigint.is_one x.d then make_raw n x.d
    else begin
      let g = Bigint.gcd n x.d in
      if Bigint.is_one g then make_raw n x.d
      else make_raw (Bigint.div n g) (Bigint.div x.d g)
    end
  end
  else begin
    let g = Bigint.gcd x.d y.d in
    if Bigint.is_one g then
      make_raw
        (big_op (Bigint.mul x.n y.d) (Bigint.mul y.n x.d))
        (Bigint.mul x.d y.d)
    else begin
      let xd' = Bigint.div x.d g and yd' = Bigint.div y.d g in
      let t = big_op (Bigint.mul x.n yd') (Bigint.mul y.n xd') in
      if Bigint.is_zero t then zero
      else begin
        let h = Bigint.gcd t g in
        if Bigint.is_one h then make_raw t (Bigint.mul xd' y.d)
        else make_raw (Bigint.div t h) (Bigint.mul xd' (Bigint.div y.d h))
      end
    end
  end

let add x y =
  if is_zero x then y else if is_zero y then x else addsub Bigint.add x y

let sub x y =
  if is_zero x then neg y
  else if is_zero y then x
  else addsub Bigint.sub x y

let mul x y =
  if is_zero x || is_zero y then zero
  else begin
    (* remove the cross gcds first; the products are then already coprime *)
    let g1 = Bigint.gcd x.n y.d and g2 = Bigint.gcd y.n x.d in
    let xn = if Bigint.is_one g1 then x.n else Bigint.div x.n g1 in
    let yd = if Bigint.is_one g1 then y.d else Bigint.div y.d g1 in
    let yn = if Bigint.is_one g2 then y.n else Bigint.div y.n g2 in
    let xd = if Bigint.is_one g2 then x.d else Bigint.div x.d g2 in
    make_raw (Bigint.mul xn yn) (Bigint.mul xd yd)
  end

let div x y = mul x (inv y)

let mul_int x k =
  if k = 0 || is_zero x then zero
  else if k = 1 then x
  else begin
    let kb = Bigint.of_int k in
    let g = Bigint.gcd kb x.d in
    if Bigint.is_one g then make_raw (Bigint.mul x.n kb) x.d
    else make_raw (Bigint.mul x.n (Bigint.div kb g)) (Bigint.div x.d g)
  end

let pow x k =
  if k >= 0 then make_raw (Bigint.pow x.n k) (Bigint.pow x.d k)
  else begin
    let y = inv x in
    make_raw (Bigint.pow y.n (-k)) (Bigint.pow y.d (-k))
  end

let compare x y =
  if x == y then 0
  else begin
    let sx = sign x and sy = sign y in
    if sx <> sy then Stdlib.compare sx sy
    else if Bigint.equal x.d y.d then Bigint.compare x.n y.n
    else Bigint.compare (Bigint.mul x.n y.d) (Bigint.mul y.n x.d)
  end

let equal x y = Bigint.equal x.n y.n && Bigint.equal x.d y.d
let lt x y = compare x y < 0
let leq x y = compare x y <= 0
let gt x y = compare x y > 0
let geq x y = compare x y >= 0
let min x y = if leq x y then x else y
let max x y = if geq x y then x else y
let hash x = (Bigint.hash x.n * 65599) lxor Bigint.hash x.d

let floor x = fst (Bigint.ediv x.n x.d)

let ceil x =
  let q, r = Bigint.ediv x.n x.d in
  if Bigint.is_zero r then q else Bigint.succ q

let is_integer x = Bigint.is_one x.d

let mid x y = mul (add x y) half

let to_float x = Bigint.to_float x.n /. Bigint.to_float x.d

let of_float_dyadic f =
  if not (Float.is_finite f) then invalid_arg "Q.of_float_dyadic: not finite";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* m * 2^53 is an integer for finite doubles *)
    let mi = Int64.of_float (Float.ldexp m 53) in
    let n = Bigint.of_string (Int64.to_string mi) in
    let e = e - 53 in
    if e >= 0 then of_bigint (Bigint.shift_left n e)
    else make n (Bigint.shift_left Bigint.one (-e))
  end

let to_string x =
  if Bigint.is_one x.d then Bigint.to_string x.n
  else Bigint.to_string x.n ^ "/" ^ Bigint.to_string x.d

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let n = Bigint.of_string (String.sub s 0 i) in
      let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make n d
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (Bigint.of_string s)
      | Some i ->
          let ip = String.sub s 0 i in
          let fp = String.sub s (i + 1) (String.length s - i - 1) in
          if fp = "" then invalid_arg "Q.of_string: trailing dot";
          let negative = String.length ip > 0 && ip.[0] = '-' in
          let whole = if ip = "" || ip = "-" || ip = "+" then zero
                      else of_bigint (Bigint.of_string ip) in
          let frac =
            make (Bigint.of_string fp)
              (Bigint.pow (Bigint.of_int 10) (String.length fp))
          in
          if negative then sub whole frac else add (abs whole) frac)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) = gt
  let ( >= ) = geq
end

let pp fmt x = Format.pp_print_string fmt (to_string x)
