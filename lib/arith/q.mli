(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: the denominator is positive and coprime with
    the numerator; zero is [0/1].  This is the scalar field for every exact
    computation in the library (quantifier elimination, simplex, volumes). *)

type t

val zero : t
val one : t
val two : t
val minus_one : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalizes.
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints a b] is the rational [a/b]. *)

val of_bigint : Bigint.t -> t
val num : t -> Bigint.t
val den : t -> Bigint.t

val of_string : string -> t
(** Accepts ["a/b"], signed decimals like ["-3"], and decimal-point notation
    like ["0.25"].  @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val to_float : t -> float

val of_float_dyadic : float -> t
(** Exact rational value of a finite float.
    @raise Invalid_argument on nan/infinite input. *)

val sign : t -> int
val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val inv : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> int -> t
(** Integer powers; negative exponents invert. @raise Division_by_zero on
    [pow zero k] for [k < 0]. *)

val mul_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val mid : t -> t -> t
(** Midpoint. *)

val is_integer : t -> bool

(* Infix aliases, intended for local [open Q.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

val pp : Format.formatter -> t -> unit
