(** Exact dense linear algebra over {!Q}: just enough for vertex enumeration,
    simplex pivoting cross-checks, and simplex-volume determinants. *)

type vec = Q.t array
type mat = Q.t array array
(** Row-major; all rows must have equal length. *)

val vec_of_ints : int list -> vec
val vec_equal : vec -> vec -> bool
val dot : vec -> vec -> Q.t
val vec_add : vec -> vec -> vec
val vec_sub : vec -> vec -> vec
val vec_smul : Q.t -> vec -> vec
val vec_is_zero : vec -> bool
val pp_vec : Format.formatter -> vec -> unit

val identity : int -> mat
val mat_of_ints : int list list -> mat
val dims : mat -> int * int
val transpose : mat -> mat
val mat_mul : mat -> mat -> mat
val mat_vec : mat -> vec -> vec

val det : mat -> Q.t
(** Determinant by fraction-free-ish Gaussian elimination over [Q].
    @raise Invalid_argument on non-square input. *)

val rank : mat -> int

val solve : mat -> vec -> vec option
(** [solve a b] returns some [x] with [a x = b] for square non-singular [a];
    [None] when [a] is singular (even if consistent). *)

val solve_general : mat -> vec -> vec option
(** Least restrictive exact solve: any solution of a (possibly non-square or
    singular) consistent system, [None] if inconsistent. Free variables are
    set to zero. *)

val inverse : mat -> mat option

(** {2 Incremental elimination}

    Backtracking Gaussian elimination over augmented rows, for enumerating
    square subsystems of a fixed row family: push rows one at a time, reject
    a dependent row immediately ([elim_push] returns [false]), pop to
    backtrack, and read the unique solution once [cols] independent rows are
    in.  A rank-deficient prefix prunes the entire enumeration subtree. *)

type elim

val elim_create : int -> elim
(** [elim_create cols] for systems in [cols] unknowns. *)

val elim_depth : elim -> int

val elim_push : elim -> vec -> Q.t -> bool
(** [elim_push e row rhs] adds the equation [row . x = rhs]; [false] (and no
    push) when [row] is linearly dependent on the rows already in.
    @raise Invalid_argument on dimension mismatch or a full stack. *)

val elim_pop : elim -> unit
(** Remove the most recently pushed row. @raise Invalid_argument if empty. *)

val elim_reset : elim -> unit
(** Forget all pushed rows, leaving the state as fresh as
    [elim_create]'s: pushes overwrite their row storage completely, so a
    reset [elim] may be reused across independent enumerations (the
    scratch-arena path in the volume engine). *)

val elim_cols : elim -> int

val elim_solution : elim -> vec
(** The unique solution of the current square system.
    @raise Invalid_argument unless exactly [cols] rows are in. *)

val pp_mat : Format.formatter -> mat -> unit
