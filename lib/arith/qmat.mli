(** Exact dense linear algebra over {!Q}: just enough for vertex enumeration,
    simplex pivoting cross-checks, and simplex-volume determinants. *)

type vec = Q.t array
type mat = Q.t array array
(** Row-major; all rows must have equal length. *)

val vec_of_ints : int list -> vec
val vec_equal : vec -> vec -> bool
val dot : vec -> vec -> Q.t
val vec_add : vec -> vec -> vec
val vec_sub : vec -> vec -> vec
val vec_smul : Q.t -> vec -> vec
val vec_is_zero : vec -> bool
val pp_vec : Format.formatter -> vec -> unit

val identity : int -> mat
val mat_of_ints : int list list -> mat
val dims : mat -> int * int
val transpose : mat -> mat
val mat_mul : mat -> mat -> mat
val mat_vec : mat -> vec -> vec

val det : mat -> Q.t
(** Determinant by fraction-free-ish Gaussian elimination over [Q].
    @raise Invalid_argument on non-square input. *)

val rank : mat -> int

val solve : mat -> vec -> vec option
(** [solve a b] returns some [x] with [a x = b] for square non-singular [a];
    [None] when [a] is singular (even if consistent). *)

val solve_general : mat -> vec -> vec option
(** Least restrictive exact solve: any solution of a (possibly non-square or
    singular) consistent system, [None] if inconsistent. Free variables are
    set to zero. *)

val inverse : mat -> mat option
val pp_mat : Format.formatter -> mat -> unit
