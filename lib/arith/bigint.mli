(** Arbitrary-precision signed integers.

    Two-tier representation in the style of [zarith]: every value that fits
    in a native [int] is carried as an immediate, with overflow-checked
    add/sub/mul and a binary (Stein) GCD that never allocate; values beyond
    62 bits promote to sign-magnitude base-[2^30] limbs (Karatsuba
    multiplication, Knuth Algorithm D division, hybrid Euclid-to-Stein
    GCD).  Results demote back to the small tier whenever they fit, so the
    representation is canonical and structural dispatch is sound.
    Implemented from scratch because the sealed build environment has no
    [zarith]; exact integer arithmetic is required by Fourier-Motzkin
    elimination and exact volume computation, whose intermediate
    coefficients overflow native integers. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int

val of_string : string -> t
(** Parses an optionally signed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Euclidean-style division truncated toward zero, like OCaml's [/] and
    [mod]: [divmod a b = (q, r)] with [a = q*b + r], [|r| < |b|] and [r]
    carrying the sign of [a].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv : t -> t -> t * t
(** Euclidean division: remainder is always non-negative. *)

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow x k] for [k >= 0].
    @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val numbits : t -> int
(** Number of bits of the magnitude; [numbits zero = 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

val to_float : t -> float
(** Nearest-ish double; magnitude may overflow to [infinity]. *)

val pp : Format.formatter -> t -> unit
