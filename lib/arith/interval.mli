(** Closed rational intervals [lo, hi], used for real-root isolation, for
    rational approximation of algebraic numbers, and as the bounded core of
    the analyzer's range abstraction.

    The library's single rounding mode is {e outward}: every operation
    that moves an endpoint ({!round_out}, {!grow}) moves the lower
    endpoint down and the upper endpoint up by the same discipline, so the
    result always encloses the exact interval and the two sides widen
    symmetrically.  Clients that over-approximate (the range pass in
    [lib/analysis]) must use these rather than rounding endpoints ad hoc. *)

type t = private { lo : Q.t; hi : Q.t }

val make : Q.t -> Q.t -> t
(** @raise Invalid_argument if [lo > hi]. *)

val point : Q.t -> t
val lo : t -> Q.t
val hi : t -> Q.t
val width : t -> Q.t
val mid : t -> Q.t
val contains : t -> Q.t -> bool
val is_point : t -> bool

val intersect : t -> t -> t option
val overlaps : t -> t -> bool
val hull : t -> t -> t

val bisect : t -> t * t
(** Split at the midpoint; both halves are closed and share the midpoint. *)

val translate : t -> Q.t -> t
val scale : t -> Q.t -> t
(** [scale i c] multiplies both endpoints by [c >= 0].
    @raise Invalid_argument on negative [c]. *)

val round_out : den:int -> t -> t
(** Snap the endpoints outward onto the grid of multiples of [1/den]:
    [lo] rounds down, [hi] rounds up.  The result contains the argument;
    a fixpoint when both endpoints already lie on the grid.
    @raise Invalid_argument when [den <= 0]. *)

val grow : t -> Q.t -> t
(** [grow i eps] widens both endpoints outward by [eps >= 0] — the
    symmetric enclosure [lo - eps, hi + eps].
    @raise Invalid_argument on negative [eps]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
