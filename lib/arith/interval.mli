(** Closed rational intervals [lo, hi], used for real-root isolation and for
    rational approximation of algebraic numbers. *)

type t = private { lo : Q.t; hi : Q.t }

val make : Q.t -> Q.t -> t
(** @raise Invalid_argument if [lo > hi]. *)

val point : Q.t -> t
val lo : t -> Q.t
val hi : t -> Q.t
val width : t -> Q.t
val mid : t -> Q.t
val contains : t -> Q.t -> bool
val is_point : t -> bool

val intersect : t -> t -> t option
val overlaps : t -> t -> bool
val hull : t -> t -> t

val bisect : t -> t * t
(** Split at the midpoint; both halves are closed and share the midpoint. *)

val translate : t -> Q.t -> t
val scale : t -> Q.t -> t
(** [scale i c] multiplies both endpoints by [c >= 0].
    @raise Invalid_argument on negative [c]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
