type vec = Q.t array
type mat = Q.t array array

let vec_of_ints l = Array.of_list (List.map Q.of_int l)

let vec_equal a b =
  Array.length a = Array.length b
  && begin
       let rec go i = i >= Array.length a || (Q.equal a.(i) b.(i) && go (i + 1)) in
       go 0
     end

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Qmat.dot: dim mismatch";
  let acc = ref Q.zero in
  for i = 0 to Array.length a - 1 do
    acc := Q.add !acc (Q.mul a.(i) b.(i))
  done;
  !acc

let vec_add a b = Array.init (Array.length a) (fun i -> Q.add a.(i) b.(i))
let vec_sub a b = Array.init (Array.length a) (fun i -> Q.sub a.(i) b.(i))
let vec_smul c a = Array.map (Q.mul c) a
let vec_is_zero a = Array.for_all Q.is_zero a

let pp_vec fmt v =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Q.pp)
    (Array.to_list v)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then Q.one else Q.zero))

let mat_of_ints rows =
  Array.of_list (List.map (fun r -> Array.of_list (List.map Q.of_int r)) rows)

let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

let transpose m =
  let r, c = dims m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let mat_mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Qmat.mat_mul: dim mismatch";
  Array.init ra (fun i ->
      Array.init cb (fun j ->
          let acc = ref Q.zero in
          for k = 0 to ca - 1 do
            acc := Q.add !acc (Q.mul a.(i).(k) b.(k).(j))
          done;
          !acc))

let mat_vec m v = Array.map (fun row -> dot row v) m

let copy_mat m = Array.map Array.copy m

(* Row-reduce [m] in place; returns (rank, pivot column list in order,
   determinant sign/value tracking for square case). *)
let row_reduce m =
  let rows, cols = dims m in
  let pivots = ref [] in
  let r = ref 0 in
  let det = ref Q.one in
  for c = 0 to cols - 1 do
    if !r < rows then begin
      (* find pivot *)
      let p = ref (-1) in
      for i = !r to rows - 1 do
        if !p < 0 && not (Q.is_zero m.(i).(c)) then p := i
      done;
      if !p >= 0 then begin
        if !p <> !r then begin
          let t = m.(!p) in
          m.(!p) <- m.(!r);
          m.(!r) <- t;
          det := Q.neg !det
        end;
        let pv = m.(!r).(c) in
        det := Q.mul !det pv;
        (* scale pivot row *)
        let inv = Q.inv pv in
        for j = c to cols - 1 do
          m.(!r).(j) <- Q.mul m.(!r).(j) inv
        done;
        for i = 0 to rows - 1 do
          if i <> !r && not (Q.is_zero m.(i).(c)) then begin
            let f = m.(i).(c) in
            for j = c to cols - 1 do
              m.(i).(j) <- Q.sub m.(i).(j) (Q.mul f m.(!r).(j))
            done
          end
        done;
        pivots := c :: !pivots;
        incr r
      end
    end
  done;
  (!r, List.rev !pivots, !det)

let det m =
  let r, c = dims m in
  if r <> c then invalid_arg "Qmat.det: non-square";
  if r = 0 then Q.one
  else begin
    let m = copy_mat m in
    let rank, _, d = row_reduce m in
    if rank < r then Q.zero else d
  end

let rank m =
  if Array.length m = 0 then 0
  else begin
    let m = copy_mat m in
    let r, _, _ = row_reduce m in
    r
  end

let solve_general a b =
  let rows, cols = dims a in
  if Array.length b <> rows then invalid_arg "Qmat.solve_general: dim mismatch";
  let aug = Array.init rows (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  let rank, pivots, _ = row_reduce aug in
  (* inconsistent iff some pivot is in the augmented column *)
  if List.exists (fun c -> c = cols) pivots then None
  else begin
    let x = Array.make cols Q.zero in
    List.iteri (fun i c -> x.(c) <- aug.(i).(cols)) pivots;
    ignore rank;
    Some x
  end

let solve a b =
  let rows, cols = dims a in
  if rows <> cols then invalid_arg "Qmat.solve: non-square";
  if rank a < rows then None else solve_general a b

let inverse m =
  let r, c = dims m in
  if r <> c then invalid_arg "Qmat.inverse: non-square";
  let aug =
    Array.init r (fun i ->
        Array.init (2 * r) (fun j ->
            if j < c then m.(i).(j)
            else if j - c = i then Q.one
            else Q.zero))
  in
  let rank, _, _ = row_reduce aug in
  if rank < r then None
  else Some (Array.init r (fun i -> Array.init r (fun j -> aug.(i).(c + j))))

(* ------------------------------------------------------------------ *)
(* Incremental elimination                                             *)
(* ------------------------------------------------------------------ *)

(* Backtracking Gaussian elimination on augmented rows [coeffs | rhs], for
   enumerating square subsystems of a fixed row family (vertex enumeration
   over n-subsets of hyperplanes): a subset whose prefix is already
   rank-deficient is rejected before any further rows are tried, pruning
   the whole enumeration subtree instead of solving each full subset from
   scratch.

   Each pushed row is forward-reduced against the current pivot rows, so
   the stack stays in (permuted) echelon form; [elim_solution] finishes by
   back-substitution in reverse pivot order.  For a nonsingular square
   system the solution is unique, hence identical to [solve]'s. *)
type elim = {
  cols : int; (* unaugmented column count *)
  mutable depth : int;
  pivot_cols : int array; (* pivot column of stack row i *)
  stack : Q.t array array; (* row i: cols coefficients, then the rhs *)
}

let elim_create cols =
  { cols;
    depth = 0;
    pivot_cols = Array.make (max cols 1) (-1);
    stack = Array.init (max cols 1) (fun _ -> Array.make (cols + 1) Q.zero) }

let elim_depth e = e.depth

let elim_push e row rhs =
  if Array.length row <> e.cols then invalid_arg "Qmat.elim_push: dim mismatch";
  if e.depth >= e.cols then invalid_arg "Qmat.elim_push: already full rank";
  let r = e.stack.(e.depth) in
  Array.blit row 0 r 0 e.cols;
  r.(e.cols) <- rhs;
  (* reduce against the existing pivot rows *)
  for i = 0 to e.depth - 1 do
    let p = e.pivot_cols.(i) in
    let f = r.(p) in
    if not (Q.is_zero f) then begin
      let pr = e.stack.(i) in
      for j = 0 to e.cols do
        if not (Q.is_zero pr.(j)) then r.(j) <- Q.sub r.(j) (Q.mul f pr.(j))
      done
    end
  done;
  (* find the new pivot among the coefficient columns *)
  let p = ref (-1) in
  (try
     for j = 0 to e.cols - 1 do
       if not (Q.is_zero r.(j)) then begin
         p := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !p < 0 then false (* linearly dependent on the rows already pushed *)
  else begin
    let inv = Q.inv r.(!p) in
    for j = 0 to e.cols do
      if not (Q.is_zero r.(j)) then r.(j) <- Q.mul r.(j) inv
    done;
    e.pivot_cols.(e.depth) <- !p;
    e.depth <- e.depth + 1;
    true
  end

let elim_pop e =
  if e.depth = 0 then invalid_arg "Qmat.elim_pop: empty";
  e.depth <- e.depth - 1

(* Stale rationals stay in the stack after a reset, but every push starts
   by blitting the full row and writing the rhs, so a reset state is
   indistinguishable from a fresh one — which is what lets the volume
   engine keep one elim per dimension in domain-local scratch arenas. *)
let elim_reset e = e.depth <- 0
let elim_cols e = e.cols

let elim_solution e =
  if e.depth <> e.cols then invalid_arg "Qmat.elim_solution: not full rank";
  let x = Array.make e.cols Q.zero in
  (* row i has zeros in the pivot columns of rows < i, so solving in
     reverse push order is plain back-substitution *)
  for i = e.depth - 1 downto 0 do
    let r = e.stack.(i) in
    let acc = ref r.(e.cols) in
    for j = 0 to e.cols - 1 do
      if j <> e.pivot_cols.(i) && not (Q.is_zero r.(j)) then
        acc := Q.sub !acc (Q.mul r.(j) x.(j))
    done;
    x.(e.pivot_cols.(i)) <- !acc
  done;
  x

let pp_mat fmt m =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list pp_vec)
    (Array.to_list m)
