(** Wire protocol of the [cqa serve] daemon: newline-delimited JSON, one
    request object per line in, one response object per line out.

    Requests carry an ["op"] field selecting the operation and an optional
    ["id"] correlation token (string or number) echoed verbatim in the
    response.  Operations:

    - [{"op":"ping"}] — liveness probe.
    - [{"op":"plan","query":Q,...}] — compile (or fetch from the plan
      cache) the query's plan, register it under its plan id for later
      [By_id] requests, and describe it.
    - [{"op":"vol",...}] — [VOL_I] of a query, by text or by registered
      plan id, with optional parameter bindings in ["args"].
    - [{"op":"vol_batch",...,"bindings":[[...],...]}] — many bindings of
      one plan in a single request.
    - [{"op":"insert","schema":S,"rel":R,"region":F}] /
      [{"op":"remove",...}] — update the schema's shared database in
      place: union ([insert]) or subtract ([remove]) the semi-linear
      region defined by the relation-free FO + LIN formula [F] (over the
      relation's canonical coordinates [x0, x1, ...]) into relation [R].
      The write is {e linearized} against in-flight volume requests: the
      batch queue is flushed before the update applies, so every earlier
      request sees the old database and every later one the new.  The
      response carries the new ["version"] and the delta's bounding box.
    - [{"op":"db_version","schema":S}] — current version of the schema's
      shared database (0 until the first update).
    - [{"op":"stats"}] — server counters, plan-cache stripe accounting and
      the current telemetry snapshot.
    - [{"op":"reset"}] — clear the plan cache, the registered-plan table
      and the engine memo caches (cold-start for benchmarks).
    - [{"op":"shutdown"}] — stop the server after responding.

    Query-bearing requests take ["schema"] (relation arities,
    ["U:1,P:2"]), ["params"] (parameter-slot variable names, array of
    strings), ["budget"] (admission budget override), ["admission"]
    (["degrade"] or ["reject"]), and the sampler knobs ["eps"], ["delta"],
    ["seed"] used when a request degrades.  Rational values — parameter
    bindings in, volumes out — travel as ["p/q"] strings; integer-valued
    JSON numbers are accepted in bindings (non-integers are read as their
    exact dyadic value).

    Responses are [{"ok":true,"op":...,...}] or
    [{"ok":false,"error":{"code":C,"msg":M}}] with stable error codes:
    [parse-error], [bad-request], [unknown-op], [unknown-plan],
    [bad-args], [over-budget], [not-exact], [not-semilinear], [unbounded],
    [server-busy], [internal-error]. *)

open Cqa_arith

(** What admission control does with a request whose engine decision is
    not [Run_exact]: degrade to the Theorem 4 sampler, or reject with an
    [over-budget] / [not-exact] error. *)
type admission = Degrade | Reject

val admission_of_string : string -> admission option
val admission_to_string : admission -> string

type target =
  | By_query of { query : string; schema : string option; params : string list }
  | By_id of int

type vol_opts = {
  budget : float option;
  admission : admission option;
  eps : float option;
  delta : float option;
  seed : int option;
}

val default_opts : vol_opts

type request =
  | Ping
  | Plan_req of { target : target; budget : float option }
  | Vol of { target : target; args : Q.t array; opts : vol_opts }
  | Vol_batch of { target : target; bindings : Q.t array list; opts : vol_opts }
  | Update of { schema : string; rel : string; region : string; inserted : bool }
  | Db_version of { schema : string }
  | Stats
  | Reset
  | Shutdown

type parsed = {
  rid : string option;
      (** the request's ["id"] field, re-rendered as JSON text ready to
          splice into the response *)
  req : request;
}

val parse : string -> (parsed, string * string) result
(** Parse one request line.  [Error (code, msg)] uses the stable error
    codes above ([parse-error] for malformed JSON, [unknown-op] /
    [bad-request] for well-formed JSON that is not a valid request). *)

(** {1 Response rendering} (single line, no trailing newline) *)

val ok : ?rid:string -> op:string -> (string * string) list -> string
(** [ok ~rid ~op fields] renders [{"ok":true,"op":op,"id":rid,<fields>}];
    each field value is already-rendered JSON text. *)

val error : ?rid:string -> ?op:string -> code:string -> string -> string
(** [error ~rid ~op ~code msg]. *)

val json_string : string -> string
(** Quote and escape. *)

val json_q : Q.t -> string
(** The ["p/q"] rendering volumes and bindings travel as. *)

val json_float : float -> string

(** {1 Value helpers} *)

val q_of_json : Cqa_telemetry.Tjson.t -> (Q.t, string) result

val schema_of_spec : string -> (Cqa_logic.Schema.t, string) result
(** ["U:1,P:2"] (commas or spaces) to a schema. *)

val vars_of_spec : string list -> Cqa_logic.Var.t array
