(* Newline-delimited JSON request/response codec for the query service.
   Parsing is strict (unknown shapes become structured errors, never
   crashes); rendering is by hand into a Buffer — the response grammar is
   small and flat, and this keeps the hot serving path allocation-light. *)

open Cqa_arith
module J = Cqa_telemetry.Tjson

type admission = Degrade | Reject

let admission_of_string = function
  | "degrade" -> Some Degrade
  | "reject" -> Some Reject
  | _ -> None

let admission_to_string = function Degrade -> "degrade" | Reject -> "reject"

type target =
  | By_query of { query : string; schema : string option; params : string list }
  | By_id of int

type vol_opts = {
  budget : float option;
  admission : admission option;
  eps : float option;
  delta : float option;
  seed : int option;
}

let default_opts =
  { budget = None; admission = None; eps = None; delta = None; seed = None }

type request =
  | Ping
  | Plan_req of { target : target; budget : float option }
  | Vol of { target : target; args : Q.t array; opts : vol_opts }
  | Vol_batch of { target : target; bindings : Q.t array list; opts : vol_opts }
  | Update of { schema : string; rel : string; region : string; inserted : bool }
  | Db_version of { schema : string }
  | Stats
  | Reset
  | Shutdown

type parsed = { rid : string option; req : request }

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_q q = json_string (Q.to_string q)
let json_float f = Printf.sprintf "%.17g" f

let ok ?rid ~op fields =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "{\"ok\":true,\"op\":";
  Buffer.add_string buf (json_string op);
  (match rid with
  | Some r ->
      Buffer.add_string buf ",\"id\":";
      Buffer.add_string buf r
  | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      Buffer.add_string buf k;
      Buffer.add_string buf "\":";
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let error ?rid ?op ~code msg =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "{\"ok\":false";
  (match op with
  | Some o ->
      Buffer.add_string buf ",\"op\":";
      Buffer.add_string buf (json_string o)
  | None -> ());
  (match rid with
  | Some r ->
      Buffer.add_string buf ",\"id\":";
      Buffer.add_string buf r
  | None -> ());
  Buffer.add_string buf ",\"error\":{\"code\":";
  Buffer.add_string buf (json_string code);
  Buffer.add_string buf ",\"msg\":";
  Buffer.add_string buf (json_string msg);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Value parsing                                                       *)
(* ------------------------------------------------------------------ *)

let q_of_json = function
  | J.Num n when Float.is_integer n && Float.abs n <= 1e15 ->
      Ok (Q.of_int (int_of_float n))
  | J.Num n -> (
      match Q.of_float_dyadic n with
      | q -> Ok q
      | exception Invalid_argument m -> Error m)
  | J.Str s -> (
      match Q.of_string s with
      | q -> Ok q
      | exception Invalid_argument m -> Error m)
  | _ -> Error "expected a number or a \"p/q\" string"

let schema_of_spec spec =
  let parts =
    String.split_on_char ',' spec
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun s -> String.trim s <> "")
  in
  let parse_one part =
    match String.split_on_char ':' (String.trim part) with
    | [ name; arity ] -> (
        match int_of_string_opt (String.trim arity) with
        | Some a when a > 0 -> Ok (String.trim name, a)
        | _ -> Error (Printf.sprintf "bad arity in schema entry %S" part))
    | _ -> Error (Printf.sprintf "bad schema entry %S (want Name:arity)" part)
  in
  let rec all acc = function
    | [] -> Ok (Cqa_logic.Schema.of_list (List.rev acc))
    | p :: rest -> (
        match parse_one p with
        | Ok e -> all (e :: acc) rest
        | Error m -> Error m)
  in
  all [] parts

let vars_of_spec names =
  names
  |> List.filter_map (fun s ->
         let s = String.trim s in
         if s = "" then None else Some (Cqa_logic.Var.of_string s))
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let member_string name obj =
  Option.bind (J.member name obj) J.to_string

let member_float name obj = Option.bind (J.member name obj) J.to_float

let rid_of obj =
  match J.member "id" obj with
  | Some (J.Str s) -> Some (json_string s)
  | Some (J.Num n) ->
      Some
        (if Float.is_integer n && Float.abs n <= 1e15 then
           Printf.sprintf "%d" (int_of_float n)
         else json_float n)
  | _ -> None

let target_of obj =
  match J.member "plan" obj with
  | Some (J.Num n) when Float.is_integer n -> Ok (By_id (int_of_float n))
  | Some _ -> Error ("bad-request", "\"plan\" must be an integer plan id")
  | None -> (
      match member_string "query" obj with
      | Some query ->
          let params =
            match J.member "params" obj with
            | Some (J.Arr vs) -> List.filter_map J.to_string vs
            | _ -> []
          in
          Ok (By_query { query; schema = member_string "schema" obj; params })
      | None ->
          Error ("bad-request", "request needs a \"query\" or a \"plan\" id"))

let opts_of obj =
  {
    budget = member_float "budget" obj;
    admission =
      Option.bind (member_string "admission" obj) admission_of_string;
    eps = member_float "eps" obj;
    delta = member_float "delta" obj;
    seed = Option.map int_of_float (member_float "seed" obj);
  }

let args_of name obj =
  match J.member name obj with
  | None -> Ok [||]
  | Some (J.Arr vs) ->
      let rec conv acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | v :: rest -> (
            match q_of_json v with
            | Ok q -> conv (q :: acc) rest
            | Error m -> Error ("bad-args", Printf.sprintf "\"%s\": %s" name m))
      in
      conv [] vs
  | Some _ -> Error ("bad-args", Printf.sprintf "\"%s\" must be an array" name)

let bindings_of obj =
  match J.member "bindings" obj with
  | Some (J.Arr rows) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | J.Arr vs :: rest -> (
            let rec row racc = function
              | [] -> Ok (Array.of_list (List.rev racc))
              | v :: vrest -> (
                  match q_of_json v with
                  | Ok q -> row (q :: racc) vrest
                  | Error m -> Error ("bad-args", "\"bindings\": " ^ m))
            in
            match row [] vs with
            | Ok r -> conv (r :: acc) rest
            | Error e -> Error e)
        | _ :: _ ->
            Error ("bad-args", "\"bindings\" must be an array of arrays")
      in
      conv [] rows
  | _ -> Error ("bad-args", "\"vol_batch\" needs a \"bindings\" array")

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let parse line =
  match J.parse line with
  | Error msg -> Error ("parse-error", msg)
  | Ok (J.Obj _ as obj) -> (
      let rid = rid_of obj in
      let finish req = Ok { rid; req } in
      match member_string "op" obj with
      | None -> Error ("bad-request", "missing \"op\" field")
      | Some "ping" -> finish Ping
      | Some "stats" -> finish Stats
      | Some "reset" -> finish Reset
      | Some "shutdown" -> finish Shutdown
      | Some "plan" ->
          let* target = target_of obj in
          finish (Plan_req { target; budget = member_float "budget" obj })
      | Some "vol" ->
          let* target = target_of obj in
          let* args = args_of "args" obj in
          finish (Vol { target; args; opts = opts_of obj })
      | Some "vol_batch" ->
          let* target = target_of obj in
          let* bindings = bindings_of obj in
          finish (Vol_batch { target; bindings; opts = opts_of obj })
      | Some (("insert" | "remove") as op) -> (
          match
            ( member_string "schema" obj,
              member_string "rel" obj,
              member_string "region" obj )
          with
          | Some schema, Some rel, Some region ->
              finish (Update { schema; rel; region; inserted = op = "insert" })
          | _ ->
              Error
                ( "bad-request",
                  Printf.sprintf
                    "%S needs \"schema\", \"rel\" and \"region\" strings" op ))
      | Some "db_version" -> (
          match member_string "schema" obj with
          | Some schema -> finish (Db_version { schema })
          | None -> Error ("bad-request", "\"db_version\" needs a \"schema\" string"))
      | Some op -> Error ("unknown-op", Printf.sprintf "unknown op %S" op))
  | Ok _ -> Error ("bad-request", "request must be a JSON object")
