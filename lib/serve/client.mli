(** Blocking client for the [cqa serve] wire protocol, plus the lockstep
    closed-loop driver the sustained-throughput benches and the
    concurrency tests share.

    A {!t} is one connection: a socket with a read buffer, so
    {!recv_line} returns exactly one response line however the kernel
    chunks the stream.  All calls block; concurrency comes from holding
    several connections and multiplexing them in lockstep
    ({!closed_loop}), which needs no extra domains on the client side. *)

type t

val connect : Server.addr -> t
(** @raise Unix.Unix_error when the server is not there. *)

val close : t -> unit
(** Idempotent. *)

val send_line : t -> string -> unit
(** Write one request line ([line] must not contain ['\n']; the newline
    terminator is appended here). *)

val send_raw : t -> string -> unit
(** Write bytes with no terminator — for tests exercising partial lines
    and mid-request disconnects. *)

val recv_line : t -> string
(** Next response line, without the terminator.
    @raise End_of_file on a server-side close. *)

val request : t -> string -> string
(** [send_line] then [recv_line]: one synchronous round trip. *)

val ping : t -> bool
(** One [ping] round trip; [false] on any error. *)

(** {1 Closed-loop driving} *)

val closed_loop :
  conns:t array -> cycles:int -> (cycle:int -> conn:int -> string) -> string array
(** Drive [conns] in lockstep for [cycles] rounds: each round writes one
    request per connection (produced by the callback), then reads one
    response per connection, in connection order.  With K connections the
    server sees K requests land together — the closed-loop population the
    micro-batcher coalesces — while the client needs only this one domain.
    Returns all [cycles * length conns] response lines in send order
    (cycle-major, connection-minor). *)
