type t = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* received bytes not yet consumed as lines *)
  chunk : Bytes.t;
  mutable open_ : bool;
}

let sockaddr_of = function
  | Server.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback)
      in
      Unix.ADDR_INET (ip, port)
  | Server.Unix_path path -> Unix.ADDR_UNIX path

let connect addr =
  let sa = sockaddr_of addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (match Unix.connect fd sa with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  { fd; rbuf = Buffer.create 1024; chunk = Bytes.create 65536; open_ = true }

let close c =
  if c.open_ then begin
    c.open_ <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send_raw c s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring c.fd s !sent (n - !sent)
  done

let send_line c line = send_raw c (line ^ "\n")

(* Pull a line out of the buffer, reading more as needed.  The buffer is
   rebuilt from the leftover tail — lines are short and this keeps the
   code obvious. *)
let recv_line c =
  let take_line () =
    let data = Buffer.contents c.rbuf in
    match String.index_opt data '\n' with
    | None -> None
    | Some i ->
        Buffer.clear c.rbuf;
        Buffer.add_substring c.rbuf data (i + 1)
          (String.length data - i - 1);
        Some (String.sub data 0 i)
  in
  let rec go () =
    match take_line () with
    | Some line -> line
    | None -> (
        match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
        | 0 -> raise End_of_file
        | n ->
            Buffer.add_subbytes c.rbuf c.chunk 0 n;
            go ())
  in
  go ()

let request c line =
  send_line c line;
  recv_line c

let ping c =
  match request c {|{"op":"ping"}|} with
  | resp ->
      (* cheap containment check; the tests parse responses properly *)
      String.length resp >= 11 && String.sub resp 0 11 = {|{"ok":true,|}
  | exception _ -> false

let closed_loop ~conns ~cycles make =
  let k = Array.length conns in
  let out = Array.make (cycles * k) "" in
  for cycle = 0 to cycles - 1 do
    for conn = 0 to k - 1 do
      send_line conns.(conn) (make ~cycle ~conn)
    done;
    for conn = 0 to k - 1 do
      out.((cycle * k) + conn) <- recv_line conns.(conn)
    done
  done;
  out
