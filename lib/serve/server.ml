(* The query-service daemon.  One domain runs the event loop and owns all
   sockets; execution fans out to the persistent pool via
   Exec.volume_batch.  Concurrency therefore never touches the engine's
   state invariants: the loop is the only mutator of connection and queue
   state, and the plan/memo layers already tolerate pool-parallel use. *)

open Cqa_arith
open Cqa_core
module T = Cqa_telemetry.Telemetry
module P = Protocol

(* All serve.* probes are traffic- and scheduling-dependent (they count
   whatever clients did), hence exempt from the counter determinism
   contract like the plan.* family. *)
let tm_req = T.counter "serve.req"
let tm_resp_ok = T.counter "serve.resp.ok"
let tm_resp_err = T.counter "serve.resp.error"
let tm_conn_accepted = T.counter "serve.conn.accepted"
let tm_conn_rejected = T.counter "serve.conn.rejected"
let tm_conn_closed = T.counter "serve.conn.closed"
let tm_batched = T.counter "serve.batched"
let tm_coalesced = T.counter "serve.coalesced"
let tm_fallback = T.counter "serve.fallback"
let tm_reject = T.counter "serve.reject"
let tm_update = T.counter "serve.update"
let tm_queue_ns = T.timer "serve.queue_ns"
let tm_exec_ns = T.timer "serve.exec_ns"

type addr = Tcp of string * int | Unix_path of string

type config = {
  addr : addr;
  domains : int;
  budget : float;
  max_clients : int;
  window_us : float;
  max_batch : int;
  admission : P.admission;
}

let default_config addr =
  {
    addr;
    domains = 1;
    budget = infinity;
    max_clients = 64;
    window_us = 500.;
    max_batch = 256;
    admission = P.Degrade;
  }

let plan_cache_json () =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i (s : Cqa_conc.Striped_tbl.stat) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"stripe\":%d,\"size\":%d,\"hits\":%d,\"misses\":%d,\
            \"evicted\":%d,\"contention\":%d}"
           i s.size s.hits s.misses s.evicted s.contention))
    (Plan.cache_stats ());
  Buffer.add_char buf ']';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  mutable alive : bool;
  mutable queued : int;  (* volume requests awaiting a batched response *)
}

let close_conn c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    T.incr tm_conn_closed
  end

(* A write to a vanished client (EPIPE & friends) closes the connection;
   it must never take the server down. *)
let write_line c s =
  if c.alive then begin
    let line = s ^ "\n" in
    let n = String.length line in
    try
      let sent = ref 0 in
      while !sent < n do
        sent := !sent + Unix.write_substring c.fd line !sent (n - !sent)
      done
    with Unix.Unix_error _ -> close_conn c
  end

let respond_ok c s =
  T.incr tm_resp_ok;
  write_line c s

let respond_err c s =
  T.incr tm_resp_err;
  write_line c s

(* ------------------------------------------------------------------ *)
(* Plan resolution                                                     *)
(* ------------------------------------------------------------------ *)

(* Served plans, addressable by plan id; the Db is kept with the plan so
   every request against one schema shares one physical database and hence
   one memoized execution state. *)
type registry = {
  plans : (int, Plan.t * Db.t) Hashtbl.t;
  dbs : (string, Db.t) Hashtbl.t;  (* schema spec -> interned empty db *)
  empty_db : Db.t;
}

let make_registry () =
  {
    plans = Hashtbl.create 64;
    dbs = Hashtbl.create 8;
    empty_db = Db.empty Cqa_logic.Schema.empty;
  }

let db_for reg = function
  | None -> Ok reg.empty_db
  | Some spec -> (
      match Hashtbl.find_opt reg.dbs spec with
      | Some db -> Ok db
      | None -> (
          match P.schema_of_spec spec with
          | Error m -> Error ("bad-request", "schema: " ^ m)
          | Ok s ->
              let db = Db.empty s in
              Hashtbl.replace reg.dbs spec db;
              Ok db))

let resolve reg ~budget target =
  match target with
  | P.By_id id -> (
      match Hashtbl.find_opt reg.plans id with
      | Some (p, db) -> Ok (p, db)
      | None -> Error ("unknown-plan", Printf.sprintf "no plan #%d registered" id))
  | P.By_query { query; schema; params } -> (
      match db_for reg schema with
      | Error e -> Error e
      | Ok db -> (
          match Parser.formula_of_string query with
          | exception Parser.Parse_error m -> Error ("parse-error", "query: " ^ m)
          | f -> (
              let params = P.vars_of_spec params in
              match Cqa_analysis.Planner.compile ~db ~budget ~params f with
              | exception Invalid_argument m -> Error ("bad-request", m)
              | p ->
                  if Array.length (Plan.coords p) = 0 then
                    Error
                      ( "bad-request",
                        "query has no free coordinates: VOL_I is \
                         0-dimensional" )
                  else begin
                    Hashtbl.replace reg.plans (Plan.id p) (p, db);
                    Ok (p, db)
                  end)))

let hint_excludes p =
  match Plan.hint p with
  | Some (Dispatch.Pointwise_poly | Dispatch.Sum_eval) -> true
  | Some Dispatch.Exact_semilinear | None -> false

let plan_fields p =
  let vars vs =
    "["
    ^ (Array.to_list vs
      |> List.map (fun v -> P.json_string (Cqa_logic.Var.name v))
      |> String.concat ",")
    ^ "]"
  in
  [
    ("plan", string_of_int (Plan.id p));
    ("shape_hash", string_of_int (Plan.shape_hash p));
    ("coords", vars (Plan.coords p));
    ("params", vars (Plan.params p));
    ( "hint",
      match Plan.hint p with
      | Some h -> P.json_string (Dispatch.to_string h)
      | None -> "null" );
    ("projected", P.json_float (Plan.projected p));
    ( "decision",
      P.json_string
        (match Plan.decision p with
        | Dispatch.Run_exact -> "run-exact"
        | Dispatch.Fallback_approx _ -> "fallback-approx") );
  ]

(* ------------------------------------------------------------------ *)
(* The request queue and batched execution                             *)
(* ------------------------------------------------------------------ *)

type exec_kind =
  | K_vol of Q.t array
  | K_vol_batch of Q.t array list
  | K_degrade of { eps : float; delta : float; seed : int; budget : float }

type job = {
  jconn : conn;
  jrid : string option;
  jplan : Plan.t;
  jdb : Db.t;
  jkind : exec_kind;
  arrival_ns : float;
}

let vol_fields p engine_field value =
  [ ("plan", string_of_int (Plan.id p)) ]
  @ engine_field
  @ [ ("vol", P.json_q value); ("vol_float", P.json_float (Q.to_float value)) ]

let respond_exec_error job (code, msg) =
  respond_err job.jconn (P.error ?rid:job.jrid ~op:"vol" ~code msg)

let exec_error = function
  | Volume_exact.Not_semilinear m -> ("not-semilinear", m)
  | Volume_exact.Unbounded -> ("unbounded", "the defined set has infinite measure")
  | e -> ("internal-error", Printexc.to_string e)

let binding_key qs =
  String.concat "," (Array.to_list (Array.map Q.to_string qs))

(* One flush group: all queued K_vol jobs for one (plan, database).
   Duplicate bindings are computed once; distinct bindings go to the pool
   as one Exec.volume_batch submission. *)
let exec_vol_group ~domains p db jobs =
  let tbl = Hashtbl.create 16 in
  let distinct = ref [] in
  List.iter
    (fun j ->
      match j.jkind with
      | K_vol qs ->
          let k = binding_key qs in
          if not (Hashtbl.mem tbl k) then begin
            Hashtbl.replace tbl k (List.length !distinct);
            distinct := qs :: !distinct
          end
      | _ -> assert false)
    jobs;
  let bindings = List.rev !distinct in
  let n_jobs = List.length jobs and n_distinct = List.length bindings in
  if n_jobs > 1 then begin
    T.add tm_batched n_jobs;
    T.add tm_coalesced (n_jobs - n_distinct)
  end;
  match Exec.volume_batch ~domains p db bindings with
  | exception e ->
      let err = exec_error e in
      List.iter (fun j -> respond_exec_error j err) jobs
  | values ->
      let values = Array.of_list values in
      List.iter
        (fun j ->
          match j.jkind with
          | K_vol qs ->
              let v = values.(Hashtbl.find tbl (binding_key qs)) in
              respond_ok j.jconn
                (P.ok ?rid:j.jrid ~op:"vol"
                   (vol_fields p [ ("engine", P.json_string "exact") ] v))
          | _ -> assert false)
        jobs

let exec_one ~domains job =
  let p = job.jplan and db = job.jdb in
  match job.jkind with
  | K_vol _ -> exec_vol_group ~domains p db [ job ]
  | K_vol_batch bindings -> (
      match Exec.volume_batch ~domains p db bindings with
      | exception e -> respond_exec_error job (exec_error e)
      | values ->
          let vols =
            "[" ^ String.concat "," (List.map P.json_q values) ^ "]"
          in
          respond_ok job.jconn
            (P.ok ?rid:job.jrid ~op:"vol_batch"
               [ ("plan", string_of_int (Plan.id p)); ("vols", vols) ]))
  | K_degrade { eps; delta; seed; budget } -> (
      T.incr tm_fallback;
      if T.enabled () then
        T.event "serve.fallback"
          (Printf.sprintf "plan #%d: degraded to sampler (budget %.3g)"
             (Plan.id p) budget);
      match Exec.volume_guarded ~domains ~budget ~eps ~delta ~seed p db with
      | exception e -> respond_exec_error job (exec_error e)
      | { Volume_exact.value; engine; _ } ->
          let engine_field =
            match engine with
            | Volume_exact.Exact_engine -> [ ("engine", P.json_string "exact") ]
            | Volume_exact.Approx_engine { sample_size } ->
                [
                  ("engine", P.json_string "approx");
                  ("sample_size", string_of_int sample_size);
                ]
          in
          respond_ok job.jconn
            (P.ok ?rid:job.jrid ~op:"vol" (vol_fields p engine_field value)))

(* Flush: group the queue by (plan, database) in arrival order, answer
   every job.  Same-plan K_vol jobs execute as one coalesced batch;
   vol_batch and degraded jobs run per job (their work is already batched
   or deliberately per-request). *)
let flush ~domains queue =
  let jobs = List.rev !queue in
  queue := [];
  let now = T.now_ns () in
  List.iter (fun j -> T.record_ns tm_queue_ns (now -. j.arrival_ns)) jobs;
  (* partition into per-(plan, db) vol groups, preserving arrival order *)
  let groups : (int * Db.t * job list ref) list ref = ref [] in
  let others = ref [] in
  List.iter
    (fun j ->
      match j.jkind with
      | K_vol _ -> (
          let id = Plan.id j.jplan in
          match
            List.find_opt (fun (gid, gdb, _) -> gid = id && gdb == j.jdb) !groups
          with
          | Some (_, _, r) -> r := j :: !r
          | None -> groups := !groups @ [ (id, j.jdb, ref [ j ]) ])
      | _ -> others := j :: !others)
    jobs;
  T.time tm_exec_ns (fun () ->
      List.iter
        (fun (_, db, r) ->
          let gjobs = List.rev !r in
          let p = (List.hd gjobs).jplan in
          List.iter (fun j -> j.jconn.queued <- j.jconn.queued - 1) gjobs;
          exec_vol_group ~domains p db gjobs)
        !groups;
      List.iter
        (fun j ->
          j.jconn.queued <- j.jconn.queued - 1;
          exec_one ~domains j)
        (List.rev !others))

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

type state = {
  cfg : config;
  reg : registry;
  mutable conns : conn list;
  queue : job list ref;  (* newest first; flush reverses *)
  mutable oldest_ns : float;  (* arrival of the oldest queued job *)
  mutable reqs : int;
  stop_now : bool Atomic.t;
}

let enqueue st job =
  if !(st.queue) = [] then st.oldest_ns <- job.arrival_ns;
  st.queue := job :: !(st.queue);
  job.jconn.queued <- job.jconn.queued + 1

let admit st conn rid ~op p db ~args_arity opts k_exact =
  let budget =
    match opts.P.budget with Some b -> b | None -> st.cfg.budget
  in
  let decision = Dispatch.decide ~budget (Plan.profile p) in
  let np = Array.length (Plan.params p) in
  if args_arity <> np then
    respond_err conn
      (P.error ?rid ~op ~code:"bad-args"
         (Printf.sprintf "plan #%d takes %d parameter value(s), got %d"
            (Plan.id p) np args_arity))
  else
    let excluded = hint_excludes p in
    match (excluded, decision) with
    | false, Dispatch.Run_exact -> k_exact ()
    | _ ->
        let code = if excluded then "not-exact" else "over-budget" in
        let projected = Plan.projected p in
        let admission =
          match opts.P.admission with
          | Some a -> a
          | None -> st.cfg.admission
        in
        let reject msg =
          T.incr tm_reject;
          respond_err conn (P.error ?rid ~op ~code msg)
        in
        if np > 0 then
          reject
            (Printf.sprintf
               "projected cost %.3g exceeds budget %.3g and parameterized \
                requests cannot degrade to the sampler"
               projected budget)
        else
          match admission with
          | P.Reject ->
              reject
                (if excluded then
                   "static hint excludes the exact engine (admission: reject)"
                 else
                   Printf.sprintf
                     "projected cost %.3g exceeds budget %.3g (admission: \
                      reject)"
                     projected budget)
          | P.Degrade ->
              let eps = Option.value opts.P.eps ~default:0.1 in
              let delta = Option.value opts.P.delta ~default:0.1 in
              let seed = Option.value opts.P.seed ~default:1 in
              enqueue st
                {
                  jconn = conn;
                  jrid = rid;
                  jplan = p;
                  jdb = db;
                  jkind = K_degrade { eps; delta; seed; budget };
                  arrival_ns = T.now_ns ();
                }

(* ------------------------------------------------------------------ *)
(* Database updates                                                    *)
(* ------------------------------------------------------------------ *)

(* A region travels as a relation-free FO + LIN formula over the edited
   relation's canonical coordinates [x0 .. x(arity-1)]; it is evaluated
   against an empty database, so any [Rel] atom is rejected up front. *)
let region_of_formula ~arity text =
  match Parser.formula_of_string text with
  | exception Parser.Parse_error m -> Error ("parse-error", "region: " ^ m)
  | f -> (
      if Ast.relations f <> [] then
        Error
          ( "bad-request",
            "region must be a relation-free FO+LIN formula over x0, x1, ..." )
      else
        match
          Eval.eval_set
            (Db.empty Cqa_logic.Schema.empty)
            (Cqa_linear.Semilinear.default_vars arity)
            f
        with
        | s -> Ok s
        | exception Invalid_argument m -> Error ("bad-request", "region: " ^ m))

let delta_box_json = function
  | None -> "null"
  | Some bb ->
      "["
      ^ String.concat ","
          (Array.to_list bb
          |> List.map (fun (lo, hi) ->
                 "[" ^ P.json_q lo ^ "," ^ P.json_q hi ^ "]"))
      ^ "]"

let apply_update reg ~schema ~rel ~region ~inserted =
  match db_for reg (Some schema) with
  | Error e -> Error e
  | Ok db -> (
      match Cqa_logic.Schema.arity (Db.schema db) rel with
      | None ->
          Error
            ("bad-request", Printf.sprintf "unknown relation %S in schema" rel)
      | Some arity -> (
          match region_of_formula ~arity region with
          | Error e -> Error e
          | Ok r -> (
              let u = if inserted then Db.Insert (rel, r) else Db.Remove (rel, r) in
              match Db.apply_update db u with
              | exception Invalid_argument m -> Error ("bad-request", m)
              | ch ->
                  T.incr tm_update;
                  Ok
                    [
                      ("rel", P.json_string rel);
                      ("version", string_of_int ch.Db.version);
                      ("delta_box", delta_box_json ch.Db.delta_box);
                      ( "delta_empty",
                        if ch.Db.delta_empty then "true" else "false" );
                    ])))

let clear_engine_caches () =
  Plan.clear_cache ();
  Cqa_linear.Fourier_motzkin.clear_qe_cache ();
  Cqa_linear.Semilinear.clear_bbox_cache ();
  Cqa_linear.Simplex.clear_basis_cache ()

let handle_request st conn line =
  T.incr tm_req;
  st.reqs <- st.reqs + 1;
  match P.parse line with
  | Error (code, msg) -> respond_err conn (P.error ~code msg)
  | Ok { rid; req } -> (
      match req with
      | P.Ping -> respond_ok conn (P.ok ?rid ~op:"ping" [])
      | P.Stats ->
          let telemetry =
            if T.enabled () then T.to_json (T.snapshot ()) else "null"
          in
          respond_ok conn
            (P.ok ?rid ~op:"stats"
               [
                 ( "serve",
                   Printf.sprintf "{\"conns\":%d,\"reqs\":%d,\"queued\":%d}"
                     (List.length st.conns) st.reqs (List.length !(st.queue))
                 );
                 ("plan_cache", plan_cache_json ());
                 ("telemetry_enabled", if T.enabled () then "true" else "false");
                 ("telemetry", telemetry);
               ])
      | P.Update { schema; rel; region; inserted } -> (
          (* serialize the write against in-flight work: everything queued
             before it executes against the pre-update database, so
             update-then-query sequences are linearizable *)
          if !(st.queue) <> [] then flush ~domains:st.cfg.domains st.queue;
          let op = if inserted then "insert" else "remove" in
          match apply_update st.reg ~schema ~rel ~region ~inserted with
          | Error (code, msg) -> respond_err conn (P.error ?rid ~op ~code msg)
          | Ok fields -> respond_ok conn (P.ok ?rid ~op fields))
      | P.Db_version { schema } -> (
          match db_for st.reg (Some schema) with
          | Error (code, msg) ->
              respond_err conn (P.error ?rid ~op:"db_version" ~code msg)
          | Ok db ->
              respond_ok conn
                (P.ok ?rid ~op:"db_version"
                   [ ("version", string_of_int (Db.version db)) ]))
      | P.Reset ->
          clear_engine_caches ();
          Hashtbl.reset st.reg.plans;
          respond_ok conn (P.ok ?rid ~op:"reset" [])
      | P.Shutdown ->
          respond_ok conn (P.ok ?rid ~op:"shutdown" []);
          Atomic.set st.stop_now true
      | P.Plan_req { target; budget } -> (
          let budget = Option.value budget ~default:st.cfg.budget in
          match resolve st.reg ~budget target with
          | Error (code, msg) -> respond_err conn (P.error ?rid ~op:"plan" ~code msg)
          | Ok (p, _db) -> respond_ok conn (P.ok ?rid ~op:"plan" (plan_fields p)))
      | P.Vol { target; args; opts } -> (
          let budget = Option.value opts.P.budget ~default:st.cfg.budget in
          match resolve st.reg ~budget target with
          | Error (code, msg) -> respond_err conn (P.error ?rid ~op:"vol" ~code msg)
          | Ok (p, db) ->
              admit st conn rid ~op:"vol" p db ~args_arity:(Array.length args)
                opts (fun () ->
                  enqueue st
                    {
                      jconn = conn;
                      jrid = rid;
                      jplan = p;
                      jdb = db;
                      jkind = K_vol args;
                      arrival_ns = T.now_ns ();
                    }))
      | P.Vol_batch { target; bindings; opts } -> (
          let budget = Option.value opts.P.budget ~default:st.cfg.budget in
          match resolve st.reg ~budget target with
          | Error (code, msg) ->
              respond_err conn (P.error ?rid ~op:"vol_batch" ~code msg)
          | Ok (p, db) ->
              let np = Array.length (Plan.params p) in
              let arity =
                match
                  List.find_opt (fun qs -> Array.length qs <> np) bindings
                with
                | Some qs -> Array.length qs
                | None -> np
              in
              admit st conn rid ~op:"vol_batch" p db ~args_arity:arity opts
                (fun () ->
                  enqueue st
                    {
                      jconn = conn;
                      jrid = rid;
                      jplan = p;
                      jdb = db;
                      jkind = K_vol_batch bindings;
                      arrival_ns = T.now_ns ();
                    })))

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

(* Read whatever is available and handle every complete line; a partial
   trailing line stays buffered.  EOF (a clean disconnect, mid-request or
   not) closes the connection and drops the partial line — queued jobs
   from this connection still execute, their responses are discarded by
   [write_line] on the closed socket. *)
let handle_readable st read_buf conn =
  match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn conn
  | 0 -> close_conn conn
  | n ->
      Buffer.add_subbytes conn.buf read_buf 0 n;
      let data = Buffer.contents conn.buf in
      Buffer.clear conn.buf;
      let parts = String.split_on_char '\n' data in
      let rec go = function
        | [] -> ()
        | [ last ] -> Buffer.add_string conn.buf last
        | line :: rest ->
            if String.trim line <> "" && conn.alive then
              handle_request st conn line;
            go rest
      in
      go parts

let sockaddr_of = function
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback)
      in
      Unix.ADDR_INET (ip, port)
  | Unix_path path -> Unix.ADDR_UNIX path

let listen_on addr =
  let sa = sockaddr_of addr in
  let dom = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (match addr with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
  Unix.bind fd sa;
  Unix.listen fd 128;
  fd

let serve ?stop ?ready cfg =
  let stop_now =
    match stop with Some a -> a | None -> Atomic.make false
  in
  (* a client vanishing mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = listen_on cfg.addr in
  (match ready with Some a -> Atomic.set a true | None -> ());
  let st =
    {
      cfg;
      reg = make_registry ();
      conns = [];
      queue = ref [];
      oldest_ns = 0.;
      reqs = 0;
      stop_now;
    }
  in
  let read_buf = Bytes.create 65536 in
  let window_ns = cfg.window_us *. 1e3 in
  let accept_one () =
    match Unix.accept listen_fd with
    | exception Unix.Unix_error _ -> ()
    | fd, _peer ->
        if List.length st.conns >= cfg.max_clients then begin
          T.incr tm_conn_rejected;
          let busy =
            P.error ~code:"server-busy"
              (Printf.sprintf "server at max-clients (%d)" cfg.max_clients)
            ^ "\n"
          in
          (try
             ignore (Unix.write_substring fd busy 0 (String.length busy))
           with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          T.incr tm_conn_accepted;
          st.conns <-
            st.conns
            @ [ { fd; buf = Buffer.create 256; alive = true; queued = 0 } ]
        end
  in
  let flush_ready () =
    match !(st.queue) with
    | [] -> false
    | q ->
        let n = List.length q in
        n >= cfg.max_batch
        || (st.conns <> []
           && List.for_all (fun c -> (not c.alive) || c.queued > 0) st.conns)
        || T.now_ns () -. st.oldest_ns >= window_ns
  in
  while not (Atomic.get st.stop_now) do
    st.conns <- List.filter (fun c -> c.alive) st.conns;
    let fds = listen_fd :: List.map (fun c -> c.fd) st.conns in
    (* With nothing queued there is nothing to time out for: traffic,
       shutdown requests and signals (EINTR below) all wake the select
       themselves, so a long timeout is purely a stop-flag safety poll.
       Keeping the idle loop quiet matters beyond politeness: an idle
       server that wakes several times a second churns its stack roots,
       and a co-resident benchmark harness trying to stabilize the GC's
       live-word count (bechamel does, unconditionally, before every
       test) then fails nondeterministically. *)
    let timeout =
      if !(st.queue) = [] then 60.
      else
        Float.max 0.
          ((window_ns -. (T.now_ns () -. st.oldest_ns)) /. 1e9)
    in
    (match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem listen_fd readable then accept_one ();
        List.iter
          (fun c ->
            if c.alive && List.mem c.fd readable then
              handle_readable st read_buf c)
          st.conns);
    if flush_ready () then flush ~domains:cfg.domains st.queue
  done;
  (* answer whatever is still queued before tearing the sockets down *)
  if !(st.queue) <> [] then flush ~domains:cfg.domains st.queue;
  List.iter close_conn st.conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  match cfg.addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Embedded servers                                                    *)
(* ------------------------------------------------------------------ *)

type handle = {
  domain : unit Domain.t;
  haddr : addr;
  mutable stopped : bool;
}

let addr_of h = h.haddr

let start_background cfg =
  let ready = Atomic.make false in
  let domain = Domain.spawn (fun () -> serve ~ready cfg) in
  (* wait for the listener: the atomic flips after bind/listen *)
  let rec wait n =
    if Atomic.get ready then ()
    else if n > 5000 then failwith "Server.start_background: listener not ready"
    else begin
      Unix.sleepf 0.001;
      wait (n + 1)
    end
  in
  wait 0;
  { domain; haddr = cfg.addr; stopped = false }

let stop_background h =
  if not h.stopped then begin
    h.stopped <- true;
    (* minimal inline client: send shutdown, wait for the ack *)
    (try
       let sa = sockaddr_of h.haddr in
       let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect fd sa;
           let line = "{\"op\":\"shutdown\"}\n" in
           ignore (Unix.write_substring fd line 0 (String.length line));
           ignore (Unix.read fd (Bytes.create 64) 0 64))
     with Unix.Unix_error _ | Failure _ -> ());
    Domain.join h.domain
  end
