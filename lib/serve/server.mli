(** The [cqa serve] daemon: a long-lived concurrent query service
    multiplexing many clients onto the compiled-plan engine and the
    persistent domain pool.

    One event-loop domain owns every socket ([Unix.select]); requests are
    parsed as they arrive and volume work is enqueued rather than executed
    inline.  A micro-batching window then coalesces same-plan requests
    into a single {!Cqa_core.Exec.volume_batch} pool submission:

    - all requests for one plan and database share the plan's memoized
      execution state (set evaluation, Lemma 5 polynomial) with a single
      warm-up instead of racing on it;
    - duplicate in-window requests (same plan, same parameter binding)
      are computed {e once} and fanned out to every requester
      ([serve.coalesced]) — the thundering-herd shape of "millions of
      users, a few hundred query shapes";
    - distinct bindings travel as one pool batch ([serve.batched]),
      parallel across bindings at the configured domain count.

    The batch is flushed as soon as every connected client has a request
    queued (a closed-loop client population can produce nothing more until
    it gets answers), when it reaches [max_batch], or when the oldest
    queued request has waited [window_us] — so a lone client never pays
    the window as latency.

    Admission control runs per request against the plan's cost verdict
    ({!Cqa_core.Dispatch.decide} on the compiled profile, against the
    request's or the server's budget): over-budget (or statically
    non-exact) requests are either rejected with a structured error or
    degraded to the Theorem 4 sampler ([serve.fallback] event), per the
    request's or server's [admission] setting.  Parameterized requests
    never degrade — the sampler has no parameter story yet (Ratschan's
    anytime interval bounds are the planned middle rung).

    Responses are byte-identical to single-client sequential execution:
    every value is an exact rational computed by the same [Exec] entry
    points, and batching changes scheduling only. *)

type addr = Tcp of string * int | Unix_path of string

type config = {
  addr : addr;
  domains : int;  (** domain count for pool-parallel execution *)
  budget : float;  (** default admission budget ([infinity] = unguarded) *)
  max_clients : int;  (** connections beyond this are turned away *)
  window_us : float;  (** micro-batching window, microseconds *)
  max_batch : int;  (** flush when this many requests are queued *)
  admission : Protocol.admission;  (** default over-budget behaviour *)
}

val default_config : addr -> config
(** [domains = 1], [budget = infinity], [max_clients = 64],
    [window_us = 500.], [max_batch = 256], [admission = Degrade]. *)

val serve :
  ?stop:bool Atomic.t -> ?ready:bool Atomic.t -> config -> unit
(** Run the daemon until a [shutdown] request arrives or [stop] is set
    (checked between select rounds, so a signal handler flipping [stop]
    stops the server promptly).  [ready] is set to [true] once the
    listening socket is bound — the handshake {!start_background} uses.
    Queued work is flushed and answered before the listener closes. *)

(** {1 Embedded servers} (tests, benchmarks, smoke jobs) *)

type handle

val start_background : config -> handle
(** Spawn the server on its own domain and return once it is accepting
    connections. *)

val stop_background : handle -> unit
(** Send a [shutdown] request and join the server domain.  Idempotent. *)

val addr_of : handle -> addr

(** {1 Shared stats rendering} *)

val plan_cache_json : unit -> string
(** Per-stripe accounting of the global plan cache
    ({!Cqa_core.Plan.cache_stats}) as a JSON array — one object per stripe
    with [size], [hits], [misses], [evicted], [contention].  Used by the
    [stats] protocol response and by [cqa vol --stats=json]. *)
